//! The daemon: a `std::net` TCP accept loop multiplexing guest-run
//! requests onto a [`pdbt_par::TaskQueue`] of session workers, with
//! translations shared through [`SharedTranslationState`].
//!
//! # Connection model
//!
//! One request frame per connection, answered by one response frame.
//! The accept loop itself only parses the request; the expensive work —
//! building the workload, translating, running — happens on a queue
//! worker, so slow sessions never block new connections. `PING` and
//! `SHUTDOWN` are answered inline (they must work even when every
//! worker is busy).
//!
//! # Shared-state partitioning
//!
//! The code cache is keyed by guest pc, so two *different* guest
//! programs (both loaded at `0x1000`) must never share one cache: a
//! session would execute the other program's translation. The server
//! therefore keeps one [`SharedTranslationState`] per distinct guest
//! image (fingerprint of base address + instruction listing): sessions
//! running the same image share its warm cache, while an unrelated
//! image gets a fresh partition with a clone of the server's ruleset.
//! Status counters aggregate across partitions.
//!
//! # Session isolation
//!
//! Each request runs a fresh [`Engine`] borrowing its image's shared
//! state with `jobs = 1`: concurrency comes from running many
//! single-threaded sessions, not from fanning one session out. That
//! keeps every per-request report bit-identical to a standalone
//! single-engine run (the shared cache only removes duplicate
//! *translation work*, never changes what a session observes — see
//! `tests/determinism.rs` at the workspace root).
//!
//! Fault plans are request-scoped: a request carrying a `faults` spec
//! arms injection on its worker thread only, and every other request is
//! explicitly shielded, so one caller's chaos run cannot degrade a
//! neighbour's session.
//!
//! # Drain semantics
//!
//! `SHUTDOWN` is acknowledged immediately, then the accept loop stops
//! and the queue is drained: already-accepted requests finish and send
//! their responses; connections arriving after the acknowledgement are
//! refused by the closed listener.

use crate::proto::{self, op};
use pdbt_core::RuleSet;
use pdbt_fleet::{
    artifact_file_name, chunk_count, dedupe_newest, parse_generation, seal_live, ArtifactAd,
    ArtifactVersion, CHUNK, MAX_ARTIFACT,
};
use pdbt_obs::json::Json;
use pdbt_obs::{LatencyHists, PhaseNs, RequestSummary};
use pdbt_par::TaskQueue;
use pdbt_runtime::{BackendKind, Engine, EngineConfig, RunSetup, SharedTranslationState};
use pdbt_workloads::{build, Benchmark, Scale, Workload};
use rand::prelude::*;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-connection socket timeout: a wedged or malicious peer can stall
/// one read/write for at most this long, never the whole server.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Server construction knobs.
#[derive(Debug)]
pub struct ServeConfig {
    /// The rule set sessions translate with (`None` = pure QEMU-path
    /// baseline). Cloned into each guest-image partition.
    pub rules: Option<RuleSet>,
    /// Session worker count: how many requests run concurrently.
    pub jobs: usize,
    /// Shard count of each partition's code cache.
    pub cache_shards: usize,
    /// Deadline applied to requests that don't carry their own
    /// `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Where to dump the flight recorder (the final stats snapshot
    /// plus the recent-request tail) when the server drains. `None`
    /// disables the dump; the CLI defaults to `flight.json`.
    pub flight_path: Option<PathBuf>,
    /// A directory of sealed `.pdba` translation artifacts to warm-boot
    /// from: every loadable artifact pre-creates its guest image's
    /// partition with the artifact's code cache, trace library, and
    /// (when present) ruleset, so the first request for that image
    /// translates nothing. Artifacts that fail to load — wrong version,
    /// damaged header, fingerprint mismatch — are counted and skipped;
    /// the image boots cold on first sight instead. Never fatal.
    pub artifact_dir: Option<PathBuf>,
    /// Host block executor every session runs with (`--backend`).
    /// Defaults to the engine default (threaded, or `PDBT_BACKEND`).
    pub backend: BackendKind,
    /// Peer daemons to replicate artifacts from (`--peer`, repeatable).
    /// With peers set, `bind` pulls every missing-or-newer artifact
    /// before the server starts answering — a follower's first request
    /// hits a warm partition — and [`Server::serve`] keeps pulling on
    /// the refresh tick. Peer failures are logged and skipped, never
    /// fatal: a follower that cannot reach its peers boots cold.
    pub peers: Vec<String>,
    /// Period of the replication refresh tick (`--replicate-interval`).
    /// Each tick re-runs the pull pass against every peer after a
    /// seeded jitter (0.5–1.5× the period, seeded from the listen
    /// port) so a restarted fleet does not thundering-herd its
    /// leaders. `None` (the default) replicates at boot only.
    pub replicate_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            rules: None,
            jobs: 4,
            cache_shards: EngineConfig::default().cache_shards,
            default_deadline_ms: None,
            flight_path: None,
            artifact_dir: None,
            backend: EngineConfig::default().backend,
            peers: Vec::new(),
            replicate_interval: None,
        }
    }
}

/// What a finished server saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// `SUBMIT` requests accepted (including ones that later failed).
    pub requests: u64,
    /// Sessions that panicked on a worker (isolated per-task; see
    /// `pdbt_par::TaskQueue`).
    pub panicked: u64,
}

/// State shared between the accept loop and the session workers.
#[derive(Debug)]
struct ServerCtx {
    /// One translation-state partition per guest-image fingerprint
    /// (see the module docs on why images must not share a cache).
    states: Mutex<HashMap<u64, Arc<SharedTranslationState>>>,
    /// Memoized workload builds, keyed by `(benchmark, scale)`.
    /// Building a benchmark is deterministic but not cheap, so the
    /// first request for a corpus pays for it and later requests reuse
    /// the `Arc`. The build runs under the map lock: concurrent first
    /// requests for the *same* corpus would otherwise duplicate it.
    workloads: Mutex<HashMap<(String, String), Arc<Workload>>>,
    /// The ruleset cloned into each new partition.
    rules: Option<RuleSet>,
    /// Shard count for each new partition's cache.
    cache_shards: usize,
    /// Fallback deadline for requests without `deadline_ms`.
    default_deadline_ms: Option<u64>,
    /// Worker count, used to size each partition's telemetry slots.
    jobs: usize,
    /// Host block executor for every session.
    backend: BackendKind,
    /// Human-readable label per partition fingerprint (`mcf/tiny`,
    /// `inline`), recorded on first sight for the STATS payload.
    labels: Mutex<HashMap<u64, String>>,
    /// When the server started serving (uptime reference).
    started: Instant,
    /// Monotone STATS snapshot sequence: every snapshot claims the
    /// next number, so a poller can order snapshots and compute
    /// deltas even when responses arrive out of order.
    stats_seq: AtomicU64,
    /// SUBMIT requests accepted over the server's lifetime.
    served: AtomicU64,
    /// Sessions currently executing on a worker.
    active: AtomicU64,
    /// Artifact warm-boot tally: seeded by the bind-time scan, and
    /// bumped at runtime when a transferred artifact's sections turn
    /// out quarantinable (the wire rejects it, but the damage is
    /// counted where operators already look for it).
    artifacts: ArtifactBoot,
    /// Replication-plane bookkeeping per partition: the guest program
    /// (for re-sealing), the current sealed bytes and their version,
    /// and what generation the artifact dir holds.
    replicas: Mutex<HashMap<u64, ReplicaMeta>>,
    /// Serializes replication-plane mutations (sealing, adoption,
    /// write-back) between the accept loop and the refresh tick. The
    /// inner `states`/`labels`/`replicas` locks stay short-lived;
    /// this one scopes a whole decide-then-adopt sequence so two
    /// concurrent transfers cannot interleave their version checks.
    replication: Mutex<()>,
    /// Replication-plane counters (pulled/pushed/adopted/rejected/
    /// written_back/bytes), surfaced as the `fleet` PING/STATS section.
    fleet: pdbt_obs::FleetCounters,
    /// Response frames that failed to write back to their client.
    /// Nonzero means clients are vanishing mid-reply (or worse, the
    /// server is wedged writing) — the happy-path tests pin it to 0.
    reply_errors: AtomicU64,
    /// Peers to replicate from, in `--peer` order.
    peers: Vec<String>,
    /// Where adopted artifacts persist and drained partitions write
    /// back to.
    artifact_dir: Option<PathBuf>,
}

/// Per-connection socket timeout for peer replication calls.
const FLEET_TIMEOUT: Duration = Duration::from_secs(30);

/// The artifact warm-boot tally. All-zero when the server boots cold
/// (no `--artifact-dir`); `sections_quarantined` also moves at runtime
/// when a wire transfer carries quarantinable damage.
#[derive(Debug, Default)]
struct ArtifactBoot {
    /// Artifacts that loaded and warmed a partition.
    loaded: AtomicU64,
    /// Artifacts rejected wholesale (unreadable, bad header/version,
    /// fingerprint mismatch) or shadowed by a newer generation of the
    /// same image — the image boots from the winner or cold.
    rejected: AtomicU64,
    /// Sections quarantined inside scanned or transferred artifacts.
    sections_quarantined: AtomicU64,
}

impl ArtifactBoot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("loaded", Json::from(self.loaded.load(Ordering::Relaxed))),
            (
                "rejected",
                Json::from(self.rejected.load(Ordering::Relaxed)),
            ),
            (
                "sections_quarantined",
                Json::from(self.sections_quarantined.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// What the replication plane knows about one partition beyond its
/// live [`SharedTranslationState`]: enough to advertise it, serve it
/// to a peer, and write it back to disk.
#[derive(Debug)]
struct ReplicaMeta {
    /// The partition label (advertised and sealed into write-backs).
    label: String,
    /// The guest image — re-sealing needs the GIMG section.
    program: pdbt_isa_arm::Program,
    /// Version of `sealed`, or of the next seal's predecessor.
    version: ArtifactVersion,
    /// The current sealed bytes, lazily refreshed when the live cache
    /// outgrows them (`None` until the partition is first sealed).
    sealed: Option<Arc<Vec<u8>>>,
    /// How many blocks `sealed` captured — the staleness check: the
    /// shared cache only ever grows and blocks are immutable, so a
    /// length match means the sealed bytes are current.
    sealed_blocks: usize,
    /// The generation the artifact dir holds for this image (`None` =
    /// not on disk); drain write-back only writes when it has moved
    /// past this.
    disk_generation: Option<u64>,
}

impl ServerCtx {
    /// The partition for a guest image, created on first sight. Each
    /// partition's telemetry plane gets one latency slot per worker
    /// and is stamped with the image fingerprint. The guest program is
    /// recorded alongside so the replication plane can re-seal the
    /// partition later (drain write-back, peer pulls).
    fn state_for(
        &self,
        image: u64,
        label: &str,
        program: &pdbt_isa_arm::Program,
    ) -> Arc<SharedTranslationState> {
        let mut map = self.states.lock().expect("state map poisoned");
        let state = Arc::clone(map.entry(image).or_insert_with(|| {
            Arc::new(SharedTranslationState::with_telemetry(
                self.rules.clone(),
                self.cache_shards,
                self.jobs,
                image,
            ))
        }));
        drop(map);
        self.labels
            .lock()
            .expect("label map poisoned")
            .entry(image)
            .or_insert_with(|| label.to_string());
        self.replicas
            .lock()
            .expect("replica map poisoned")
            .entry(image)
            .or_insert_with(|| ReplicaMeta {
                label: label.to_string(),
                program: program.clone(),
                version: ArtifactVersion::default(),
                sealed: None,
                sealed_blocks: 0,
                disk_generation: None,
            });
        state
    }
}

/// A bound, not-yet-serving daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    queue: TaskQueue,
    ctx: Arc<ServerCtx>,
    flight_path: Option<PathBuf>,
    replicate_interval: Option<Duration>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and builds
    /// the worker queue.
    ///
    /// # Errors
    ///
    /// Forwarded bind errors.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let queue = TaskQueue::new(cfg.jobs);
        let jobs = queue.jobs();
        let scan = match &cfg.artifact_dir {
            Some(dir) => load_artifacts(dir, cfg.rules.as_ref(), cfg.cache_shards, jobs),
            None => BootScan::default(),
        };
        let ctx = Arc::new(ServerCtx {
            states: Mutex::new(scan.states),
            workloads: Mutex::new(HashMap::new()),
            rules: cfg.rules,
            cache_shards: cfg.cache_shards,
            default_deadline_ms: cfg.default_deadline_ms,
            jobs,
            backend: cfg.backend,
            labels: Mutex::new(scan.labels),
            started: Instant::now(),
            stats_seq: AtomicU64::new(0),
            served: AtomicU64::new(0),
            active: AtomicU64::new(0),
            artifacts: scan.boot,
            replicas: Mutex::new(scan.replicas),
            replication: Mutex::new(()),
            fleet: pdbt_obs::FleetCounters::new(),
            reply_errors: AtomicU64::new(0),
            peers: cfg.peers,
            artifact_dir: cfg.artifact_dir,
        });
        // Boot pull: a follower is warm *before* `bind` returns, so
        // its very first request already hits the replicated cache.
        if !ctx.peers.is_empty() {
            replicate_once(&ctx);
        }
        Ok(Server {
            listener,
            queue,
            ctx,
            flight_path: cfg.flight_path,
            replicate_interval: cfg.replicate_interval,
        })
    }

    /// The bound address (the real port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Forwarded socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Effective session worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.queue.jobs()
    }

    /// Runs the accept loop until a `SHUTDOWN` frame arrives, then
    /// drains in-flight sessions and returns the summary.
    ///
    /// # Errors
    ///
    /// Fatal listener errors; per-connection errors are answered on
    /// that connection and do not stop the server.
    pub fn serve(self) -> io::Result<ServeSummary> {
        let Server {
            listener,
            queue,
            ctx,
            flight_path,
            replicate_interval,
        } = self;
        // The refresh tick: re-run the pull pass against every peer on
        // a jittered period. Seeded from the listen port so a fleet's
        // ticks are deterministic per node but decorrelated across
        // nodes.
        let stop = Arc::new(AtomicBool::new(false));
        let ticker = match replicate_interval {
            Some(interval) if !ctx.peers.is_empty() => {
                let ctx = Arc::clone(&ctx);
                let stop = Arc::clone(&stop);
                let seed = listener.local_addr().map_or(0, |a| u64::from(a.port()));
                Some(std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    'tick: loop {
                        let wait = interval.mul_f64(0.5 + rng.gen::<f64>());
                        let deadline = Instant::now() + wait;
                        while Instant::now() < deadline {
                            if stop.load(Ordering::Relaxed) {
                                break 'tick;
                            }
                            std::thread::sleep(Duration::from_millis(50));
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        replicate_once(&ctx);
                    }
                }))
            }
            _ => None,
        };
        let mut requests = 0u64;
        for conn in listener.incoming() {
            let mut stream = match conn {
                Ok(s) => s,
                // Transient accept failures (peer gone before accept)
                // are not fatal.
                Err(_) => continue,
            };
            let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
            let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
            let frame = match proto::read_frame(&mut stream) {
                Ok(f) => f,
                Err(e) => {
                    respond_error(&ctx, &mut stream, None, &format!("bad frame: {e}"));
                    continue;
                }
            };
            match frame.opcode {
                op::PING => {
                    respond(&ctx, &mut stream, op::PONG, &status(&ctx, &queue));
                }
                op::STATS => {
                    respond(&ctx, &mut stream, op::PONG, &stats(&ctx, &queue));
                }
                op::ART_LIST => {
                    let ads = advertise(&ctx);
                    let doc =
                        Json::obj([("artifacts", Json::arr(ads.iter().map(ArtifactAd::to_json)))]);
                    respond(&ctx, &mut stream, op::RESULT, &doc);
                }
                op::ART_PULL => {
                    serve_pull(&ctx, &frame, &mut stream);
                }
                op::ART_PUSH => {
                    serve_push(&ctx, &frame, &mut stream);
                }
                op::SHUTDOWN => {
                    let ack = Json::obj([
                        ("draining", Json::from(queue.outstanding())),
                        ("ok", Json::from(true)),
                    ]);
                    respond(&ctx, &mut stream, op::PONG, &ack);
                    break;
                }
                op::SUBMIT => {
                    requests += 1;
                    let req = match frame.payload_str().ok().and_then(|s| Json::parse(s).ok()) {
                        Some(j) => j,
                        None => {
                            respond_error(
                                &ctx,
                                &mut stream,
                                None,
                                "request payload is not valid JSON",
                            );
                            continue;
                        }
                    };
                    // Accept-time stamps: the global request sequence
                    // number and the clock the queue-wait phase is
                    // measured against.
                    let seq = ctx.served.fetch_add(1, Ordering::Relaxed) + 1;
                    let accept_ns = pdbt_obs::now_ns();
                    let ctx = Arc::clone(&ctx);
                    let submit = queue.submit(move || {
                        serve_request(&ctx, req, &mut stream, seq, accept_ns);
                    });
                    if let Err(pdbt_par::QueueClosed(task)) = submit {
                        // Unreachable while the queue is owned here (it
                        // only closes on drain), but never drop a
                        // request silently: run it inline.
                        task();
                    }
                }
                other => {
                    respond_error(
                        &ctx,
                        &mut stream,
                        None,
                        &format!("unknown opcode {other:#04x}"),
                    );
                }
            }
        }
        // Quiesce the replication tick before the final snapshot and
        // write-back, so nothing mutates partitions underneath them.
        stop.store(true, Ordering::Relaxed);
        if let Some(handle) = ticker {
            let _ = handle.join();
        }
        // Final snapshot before draining destroys nothing but after it
        // quiesces everything: dump the flight recorder so postmortems
        // (including ones prompted by panicked sessions) don't require
        // rerunning the traffic.
        queue.wait_idle();
        if let Some(path) = &flight_path {
            let doc = stats(&ctx, &queue);
            if let Err(e) = std::fs::write(path, doc.to_string() + "\n") {
                eprintln!("pdbt-serve: flight dump to {} failed: {e}", path.display());
            }
        }
        // Drain write-back: partitions whose live cache outgrew their
        // on-disk artifact re-seal as the next generation, so warm
        // state compounds across restarts instead of evaporating.
        if let Some(dir) = ctx.artifact_dir.clone() {
            write_back(&ctx, &dir);
        }
        let panicked = queue.drain();
        Ok(ServeSummary { requests, panicked })
    }
}

/// The PONG status payload: protocol version, queue occupancy, and the
/// server-lifetime counters summed across guest-image partitions.
fn status(ctx: &ServerCtx, queue: &TaskQueue) -> Json {
    let (mut probes, mut inserted, mut hits) = (0u64, 0u64, 0u64);
    let (mut translate_calls, mut sessions, mut trace_hits) = (0u64, 0u64, 0u64);
    let (mut cached_blocks, mut images) = (0usize, 0usize);
    for state in ctx.states.lock().expect("state map poisoned").values() {
        let snap = state.server().snapshot();
        probes += snap.probes;
        inserted += snap.inserted;
        hits += snap.hits;
        translate_calls += snap.translate_calls;
        sessions += snap.sessions;
        trace_hits += state.artifact().snapshot().trace_hits;
        cached_blocks += state.cache().len();
        images += 1;
    }
    let mut artifacts = ctx.artifacts.to_json();
    if let Json::Obj(pairs) = &mut artifacts {
        pairs.insert("trace_hits".to_string(), Json::from(trace_hits));
    }
    Json::obj([
        ("version", Json::from(u64::from(proto::VERSION))),
        ("jobs", Json::from(queue.jobs())),
        ("outstanding", Json::from(queue.outstanding())),
        ("faults_enabled", Json::from(pdbt_faults::ENABLED)),
        ("images", Json::from(images)),
        ("cached_blocks", Json::from(cached_blocks)),
        ("artifacts", artifacts),
        ("fleet", fleet_json(ctx)),
        (
            "server",
            Json::obj([
                ("probes", Json::from(probes)),
                ("inserted", Json::from(inserted)),
                ("hits", Json::from(hits)),
                ("translate_calls", Json::from(translate_calls)),
                ("sessions", Json::from(sessions)),
                (
                    "reply_errors",
                    Json::from(ctx.reply_errors.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ])
}

/// The live-telemetry snapshot behind the `STATS` frame. Built inline
/// by the accept loop: everything it reads is either atomic, behind a
/// short-lived lock, or merged from per-worker histograms in index
/// order, so a poll never waits on a running session.
fn stats(ctx: &ServerCtx, queue: &TaskQueue) -> Json {
    let stats_seq = ctx.stats_seq.fetch_add(1, Ordering::Relaxed) + 1;
    // Partitions sorted by fingerprint: deterministic payload order.
    let mut states: Vec<(u64, Arc<SharedTranslationState>)> = ctx
        .states
        .lock()
        .expect("state map poisoned")
        .iter()
        .map(|(&fp, s)| (fp, Arc::clone(s)))
        .collect();
    states.sort_by_key(|&(fp, _)| fp);
    let labels = ctx.labels.lock().expect("label map poisoned").clone();

    let (mut probes, mut inserted, mut hits) = (0u64, 0u64, 0u64);
    let (mut translate_calls, mut sessions, mut trace_hits) = (0u64, 0u64, 0u64);
    let mut compiled_blocks = 0u64;
    let mut global = LatencyHists::default();
    let mut flight: Vec<RequestSummary> = Vec::new();
    let mut partitions = Vec::with_capacity(states.len());
    for (fp, state) in &states {
        let snap = state.server().snapshot();
        let tele = state.telemetry().snapshot();
        let art = state.artifact().snapshot();
        probes += snap.probes;
        inserted += snap.inserted;
        hits += snap.hits;
        translate_calls += snap.translate_calls;
        sessions += snap.sessions;
        trace_hits += art.trace_hits;
        compiled_blocks += snap.compiled_blocks;
        global.merge(&tele.latency);
        flight.extend(tele.flight);
        partitions.push(Json::obj([
            ("partition", Json::str(format!("{fp:016x}"))),
            (
                "label",
                Json::str(labels.get(fp).map(String::as_str).unwrap_or("?")),
            ),
            ("cached_blocks", Json::from(state.cache().len())),
            ("warm", Json::from(art.warm())),
            ("loaded_blocks", Json::from(art.loaded_blocks)),
            ("trace_hits", Json::from(art.trace_hits)),
            ("sessions", Json::from(snap.sessions)),
            ("probes", Json::from(snap.probes)),
            ("inserted", Json::from(snap.inserted)),
            ("hits", Json::from(snap.hits)),
            ("compiled_blocks", Json::from(snap.compiled_blocks)),
            ("hit_rate", Json::from(snap.hit_rate())),
            (
                "latency",
                Json::obj([
                    ("count", Json::from(tele.latency.request_ns.count())),
                    ("p50", Json::from(tele.latency.request_ns.p50())),
                    ("p95", Json::from(tele.latency.request_ns.p95())),
                    ("p99", Json::from(tele.latency.request_ns.p99())),
                ]),
            ),
        ]));
    }
    // The merged flight tail reads chronologically across partitions.
    flight.sort_by_key(|s| s.seq);
    let tail_from = flight
        .len()
        .saturating_sub(pdbt_obs::FlightRecorder::CAPACITY);
    let hit_rate = if probes == 0 {
        0.0
    } else {
        hits as f64 / probes as f64
    };
    Json::obj([
        ("stats_seq", Json::from(stats_seq)),
        ("version", Json::from(u64::from(proto::VERSION))),
        (
            "uptime_ns",
            Json::from(ctx.started.elapsed().as_nanos() as u64),
        ),
        ("jobs", Json::from(ctx.jobs)),
        ("backend", Json::str(ctx.backend.name())),
        ("outstanding", Json::from(queue.outstanding())),
        (
            "sessions",
            Json::obj([
                ("served", Json::from(ctx.served.load(Ordering::Relaxed))),
                ("active", Json::from(ctx.active.load(Ordering::Relaxed))),
                ("panicked", Json::from(queue.panicked())),
                (
                    "reply_errors",
                    Json::from(ctx.reply_errors.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "pool",
            Json::obj([
                ("high_water", Json::from(queue.high_water())),
                (
                    "completed",
                    Json::arr(queue.utilization().into_iter().map(Json::from)),
                ),
                (
                    "busy_ns",
                    Json::arr(queue.busy_ns().into_iter().map(Json::from)),
                ),
            ]),
        ),
        (
            "server",
            Json::obj([
                ("probes", Json::from(probes)),
                ("inserted", Json::from(inserted)),
                ("hits", Json::from(hits)),
                ("translate_calls", Json::from(translate_calls)),
                ("sessions", Json::from(sessions)),
                ("compiled_blocks", Json::from(compiled_blocks)),
                ("hit_rate", Json::from(hit_rate)),
            ]),
        ),
        ("artifacts", {
            let mut artifacts = ctx.artifacts.to_json();
            if let Json::Obj(pairs) = &mut artifacts {
                pairs.insert("trace_hits".to_string(), Json::from(trace_hits));
            }
            artifacts
        }),
        ("fleet", fleet_json(ctx)),
        ("latency", global.to_json()),
        ("partitions", Json::Arr(partitions)),
        (
            "flight",
            Json::arr(flight[tail_from..].iter().map(RequestSummary::to_json)),
        ),
    ])
}

/// The worker-side request lifecycle: stamp dequeue, run the session
/// under a request-scoped trace id, write the reply, then fold the
/// phase latencies into the partition's telemetry plane at this
/// worker's slot.
fn serve_request(ctx: &ServerCtx, req: Json, stream: &mut TcpStream, seq: u64, accept_ns: u64) {
    let dequeue_ns = pdbt_obs::now_ns();
    ctx.active.fetch_add(1, Ordering::Relaxed);
    // Tag every span this session opens (translate, exec, ...) with
    // the request sequence, so multi-session Chrome traces separate
    // into one track per request.
    let _scope = pdbt_obs::scoped(seq);
    let id = req.get("id").and_then(Json::as_u64);
    match run_request(ctx, &req) {
        Ok((resp, tele)) => {
            let run_done_ns = pdbt_obs::now_ns();
            let payload = resp.to_string();
            if proto::write_frame(stream, op::RESULT, payload.as_bytes()).is_err() {
                ctx.reply_errors.fetch_add(1, Ordering::Relaxed);
            }
            let reply_done_ns = pdbt_obs::now_ns();
            let summary = RequestSummary {
                seq,
                id: id.unwrap_or(0),
                partition: tele.partition,
                outcome: tele.outcome,
                phases: PhaseNs {
                    queue: dequeue_ns.saturating_sub(accept_ns),
                    translate: tele.translate_ns,
                    execute: run_done_ns
                        .saturating_sub(dequeue_ns)
                        .saturating_sub(tele.translate_ns),
                    reply: reply_done_ns.saturating_sub(run_done_ns),
                },
                reply_bytes: payload.len() as u64,
                injected: tele.injected,
                fault_sites: tele.fault_sites,
            };
            tele.shared
                .telemetry()
                .record(pdbt_par::current_worker_slot().unwrap_or(0), summary);
        }
        Err(e) => respond_error(ctx, stream, id, &e),
    }
    ctx.active.fetch_sub(1, Ordering::Relaxed);
}

/// Writes a response frame; a send failure is the client's loss, not
/// the server's problem (the session already ran) — but it is counted
/// (`reply_errors`), because a fleet where replies silently vanish
/// looks healthy from every other counter.
fn respond(ctx: &ServerCtx, stream: &mut TcpStream, opcode: u8, payload: &Json) {
    if proto::write_frame(stream, opcode, payload.to_string().as_bytes()).is_err() {
        ctx.reply_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn respond_error(ctx: &ServerCtx, stream: &mut TcpStream, id: Option<u64>, msg: &str) {
    let mut pairs = vec![("error".to_string(), Json::str(msg))];
    if let Some(id) = id {
        pairs.push(("id".to_string(), Json::from(id)));
    }
    respond(
        ctx,
        stream,
        op::ERROR,
        &Json::Obj(pairs.into_iter().collect()),
    );
}

/// The `fleet` PING/STATS section.
fn fleet_json(ctx: &ServerCtx) -> Json {
    let f = ctx.fleet.snapshot();
    Json::obj([
        ("pulled", Json::from(f.pulled)),
        ("pushed", Json::from(f.pushed)),
        ("adopted", Json::from(f.adopted)),
        ("rejected", Json::from(f.rejected)),
        ("written_back", Json::from(f.written_back)),
        ("bytes", Json::from(f.bytes)),
    ])
}

/// The current sealed bytes and version of one partition, re-sealing
/// lazily when the live cache has outgrown the last seal. Every
/// content change bumps the generation by one, so this node's
/// advertised versions are monotone — the property the fleet's
/// newest-wins convergence rests on. Returns `None` for a partition
/// with nothing to advertise (empty cache, never sealed) or no
/// recorded guest program.
///
/// Callers hold `ctx.replication`; the inner locks are taken in the
/// house order (`states`, then `replicas`).
fn seal_partition(ctx: &ServerCtx, fp: u64) -> Option<(Arc<Vec<u8>>, ArtifactVersion)> {
    let state = {
        let map = ctx.states.lock().expect("state map poisoned");
        map.get(&fp).map(Arc::clone)
    }?;
    let live_blocks = state.cache().len();
    let mut replicas = ctx.replicas.lock().expect("replica map poisoned");
    let meta = replicas.get_mut(&fp)?;
    if let Some(sealed) = &meta.sealed {
        if meta.sealed_blocks == live_blocks {
            return Some((Arc::clone(sealed), meta.version));
        }
    }
    if live_blocks == 0 && meta.sealed.is_none() {
        return None;
    }
    let generation = if meta.sealed.is_some() {
        meta.version.generation + 1
    } else {
        // First seal: continue past whatever the disk holds (a
        // quarantined boot artifact leaves `sealed` empty but the
        // file's generation taken), else start at 0.
        meta.disk_generation.map_or(0, |g| g + 1)
    };
    let bytes = seal_live(&meta.label, &meta.program, &state);
    let version = ArtifactVersion::of_bytes(generation, &bytes)
        .expect("a self-sealed artifact always parses");
    let sealed = Arc::new(bytes);
    meta.sealed = Some(Arc::clone(&sealed));
    meta.sealed_blocks = live_blocks;
    meta.version = version;
    Some((sealed, version))
}

/// Builds the `ART_LIST` advertisement: one entry per sealable
/// partition, in fingerprint order.
fn advertise(ctx: &ServerCtx) -> Vec<ArtifactAd> {
    let _plane = ctx.replication.lock().expect("replication lock poisoned");
    let mut fps: Vec<u64> = {
        let map = ctx.states.lock().expect("state map poisoned");
        map.keys().copied().collect()
    };
    fps.sort_unstable();
    let mut ads = Vec::new();
    for fp in fps {
        let Some((sealed, version)) = seal_partition(ctx, fp) else {
            continue;
        };
        let (blocks, traces) = {
            let map = ctx.states.lock().expect("state map poisoned");
            map.get(&fp)
                .map_or((0, 0), |s| (s.cache().len() as u64, s.library_len() as u64))
        };
        let label = {
            let replicas = ctx.replicas.lock().expect("replica map poisoned");
            replicas
                .get(&fp)
                .map_or_else(String::new, |m| m.label.clone())
        };
        ads.push(ArtifactAd {
            fingerprint: fp,
            version,
            blocks,
            traces,
            bytes: sealed.len() as u64,
            label,
        });
    }
    ads
}

/// Serves an `ART_PULL`: header frame with the transfer envelope, then
/// the chunk frames. An unknown or unsealable fingerprint is an
/// `ERROR` frame, never a partial stream.
fn serve_pull(ctx: &ServerCtx, frame: &proto::Frame, stream: &mut TcpStream) {
    let fp = frame
        .payload_str()
        .ok()
        .and_then(|s| Json::parse(s).ok())
        .and_then(|j| {
            j.get("fingerprint")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
        });
    let Some(fp) = fp else {
        respond_error(ctx, stream, None, "ART_PULL needs a hex `fingerprint`");
        return;
    };
    let sealed = {
        let _plane = ctx.replication.lock().expect("replication lock poisoned");
        seal_partition(ctx, fp)
    };
    let Some((sealed, version)) = sealed else {
        respond_error(
            ctx,
            stream,
            None,
            &format!("no artifact for fingerprint {fp:016x}"),
        );
        return;
    };
    let label = {
        let replicas = ctx.replicas.lock().expect("replica map poisoned");
        replicas
            .get(&fp)
            .map_or_else(String::new, |m| m.label.clone())
    };
    let header = Json::obj([
        ("fingerprint", Json::str(format!("{fp:016x}"))),
        ("generation", Json::from(version.generation)),
        ("bytes", Json::from(sealed.len() as u64)),
        ("chunks", Json::from(chunk_count(sealed.len()) as u64)),
        (
            "crc32",
            Json::from(u64::from(pdbt_artifact::bytes::crc32(&sealed))),
        ),
        ("label", Json::str(label)),
    ]);
    respond(ctx, stream, op::RESULT, &header);
    for chunk in sealed.chunks(CHUNK) {
        if proto::write_frame(stream, op::ART_DATA, chunk).is_err() {
            ctx.reply_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    ctx.fleet.record_pushed();
    ctx.fleet.record_bytes(sealed.len() as u64);
}

/// Serves an `ART_PUSH`: reassembles the offered artifact from its
/// chunk frames, verifies the transfer envelope (size cap, chunk
/// count, CRC), then runs the adoption decision. Always answers with
/// a verdict frame; never panics on hostile input.
fn serve_push(ctx: &ServerCtx, frame: &proto::Frame, stream: &mut TcpStream) {
    let Some(header) = frame.payload_str().ok().and_then(|s| Json::parse(s).ok()) else {
        respond_error(ctx, stream, None, "ART_PUSH header is not valid JSON");
        return;
    };
    let fp = header
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok());
    let generation = header.get("generation").and_then(Json::as_u64);
    let total = header.get("bytes").and_then(Json::as_u64);
    let chunks = header.get("chunks").and_then(Json::as_u64);
    let crc = header.get("crc32").and_then(Json::as_u64);
    let (Some(fp), Some(generation), Some(total), Some(chunks), Some(crc)) =
        (fp, generation, total, chunks, crc)
    else {
        respond_error(
            ctx,
            stream,
            None,
            "ART_PUSH header needs fingerprint/generation/bytes/chunks/crc32",
        );
        return;
    };
    if total > MAX_ARTIFACT || chunks != chunk_count(total as usize) as u64 {
        ctx.fleet.record_rejected();
        respond_error(
            ctx,
            stream,
            None,
            "ART_PUSH transfer envelope is implausible",
        );
        return;
    }
    let mut bytes = Vec::with_capacity(total as usize);
    for _ in 0..chunks {
        let data = match proto::read_frame(stream) {
            Ok(f) if f.opcode == op::ART_DATA => f.payload,
            Ok(f) => {
                ctx.fleet.record_rejected();
                respond_error(
                    ctx,
                    stream,
                    None,
                    &format!("expected ART_DATA continuation, got {:#04x}", f.opcode),
                );
                return;
            }
            Err(e) => {
                ctx.fleet.record_rejected();
                respond_error(ctx, stream, None, &format!("artifact stream died: {e}"));
                return;
            }
        };
        if data.len() > CHUNK || bytes.len() + data.len() > total as usize {
            ctx.fleet.record_rejected();
            respond_error(ctx, stream, None, "oversized artifact chunk");
            return;
        }
        bytes.extend_from_slice(&data);
    }
    if bytes.len() as u64 != total || u64::from(pdbt_artifact::bytes::crc32(&bytes)) != crc {
        ctx.fleet.record_rejected();
        respond_error(ctx, stream, None, "artifact transfer fails its envelope");
        return;
    }
    ctx.fleet.record_bytes(total);
    let _plane = ctx.replication.lock().expect("replication lock poisoned");
    let (adopted, reason, current) = adopt_artifact(ctx, &bytes, generation, fp);
    let verdict = Json::obj([
        ("fingerprint", Json::str(format!("{fp:016x}"))),
        ("adopted", Json::from(adopted)),
        ("reason", Json::str(reason)),
        ("generation", Json::from(current)),
    ]);
    respond(ctx, stream, op::RESULT, &verdict);
}

/// The adoption decision for a CRC-verified transferred artifact: the
/// wire trust boundary (opens cleanly, zero quarantined sections,
/// content fingerprint matches the declared one), then the version
/// order against the locally *materialized* version — the local side
/// seals its live growth first, so the comparison is deterministic no
/// matter when the offer arrives. On adoption the partition's shared
/// state is rebuilt via `warm_state` semantics (no counter pollution:
/// sessions on the new state report translate-free warm runs);
/// in-flight sessions keep the old `Arc` and finish undisturbed.
///
/// Returns `(adopted, reason, local generation after the decision)`.
/// Caller holds `ctx.replication`.
fn adopt_artifact(
    ctx: &ServerCtx,
    bytes: &[u8],
    generation: u64,
    declared_fp: u64,
) -> (bool, String, u64) {
    let local_generation = |fp: u64| -> u64 {
        let replicas = ctx.replicas.lock().expect("replica map poisoned");
        replicas.get(&fp).map_or(0, |m| m.version.generation)
    };
    let opened = match pdbt_artifact::open_salvage(bytes) {
        Ok(o) => o,
        Err(e) => {
            ctx.fleet.record_rejected();
            return (
                false,
                format!("artifact rejected: {e}"),
                local_generation(declared_fp),
            );
        }
    };
    if !opened.quarantined.is_empty() {
        // Counted where disk-scan damage already shows up, and the
        // artifact is refused wholesale: a partial copy never
        // replaces a healthy partition — the peer can re-pull.
        ctx.artifacts
            .sections_quarantined
            .fetch_add(opened.quarantined.len() as u64, Ordering::Relaxed);
        ctx.fleet.record_rejected();
        return (
            false,
            format!(
                "{} section(s) quarantined in transfer",
                opened.quarantined.len()
            ),
            local_generation(declared_fp),
        );
    }
    let fp = opened.artifact.fingerprint();
    if fp != declared_fp {
        ctx.fleet.record_rejected();
        return (
            false,
            format!("content fingerprint {fp:016x} does not match the declared {declared_fp:016x}"),
            local_generation(declared_fp),
        );
    }
    let incoming =
        ArtifactVersion::of_bytes(generation, bytes).expect("an artifact that opened still parses");
    // Materialize the local version before comparing: live growth is
    // sealed (and its generation bumped) first, so an offer can never
    // overwrite translations the incoming artifact lacks.
    let local = seal_partition(ctx, fp).map(|(_, v)| v);
    if let Some(held) = local {
        if held >= incoming {
            ctx.fleet.record_rejected();
            return (
                false,
                format!(
                    "stale: local generation {} is newer or equal",
                    held.generation
                ),
                held.generation,
            );
        }
    }
    let state = pdbt_artifact::warm_state(&opened, ctx.rules.as_ref(), ctx.cache_shards, ctx.jobs);
    let label = if opened.artifact.label.is_empty() {
        format!("{fp:016x}")
    } else {
        opened.artifact.label.clone()
    };
    let sealed = Arc::new(bytes.to_vec());
    // Persist the adopted bytes so a restart boots warm from disk; a
    // write failure demotes this to memory-only adoption (the drain
    // write-back will retry).
    let prior_disk = {
        let replicas = ctx.replicas.lock().expect("replica map poisoned");
        replicas.get(&fp).and_then(|m| m.disk_generation)
    };
    let disk_generation = match &ctx.artifact_dir {
        Some(dir) => {
            let path = dir.join(artifact_file_name(fp, generation));
            match std::fs::write(&path, sealed.as_slice()) {
                Ok(()) => Some(generation),
                Err(e) => {
                    eprintln!(
                        "pdbt-serve: persisting adopted artifact {} failed: {e}",
                        path.display()
                    );
                    prior_disk
                }
            }
        }
        None => prior_disk,
    };
    let meta = ReplicaMeta {
        label: label.clone(),
        program: opened.artifact.program.clone(),
        version: incoming,
        sealed: Some(sealed),
        sealed_blocks: opened.artifact.blocks.len(),
        disk_generation,
    };
    ctx.states
        .lock()
        .expect("state map poisoned")
        .insert(fp, Arc::new(state));
    ctx.labels
        .lock()
        .expect("label map poisoned")
        .insert(fp, label);
    ctx.replicas
        .lock()
        .expect("replica map poisoned")
        .insert(fp, meta);
    ctx.fleet.record_adopted();
    (true, "adopted".to_string(), generation)
}

/// One replication pass: ask every peer for its advertisements, pull
/// whatever is missing here or newer than what this node holds, and
/// run each pull through the adoption decision. Peer failures are
/// logged and skipped — replication is opportunistic, never fatal.
fn replicate_once(ctx: &ServerCtx) {
    for peer in &ctx.peers {
        let ads = match crate::fleet::list_artifacts(peer.as_str(), FLEET_TIMEOUT) {
            Ok(ads) => ads,
            Err(e) => {
                eprintln!("pdbt-serve: peer {peer} unreachable: {e}");
                continue;
            }
        };
        for ad in ads {
            let worth_pulling = {
                let _plane = ctx.replication.lock().expect("replication lock poisoned");
                seal_partition(ctx, ad.fingerprint).is_none_or(|(_, held)| held < ad.version)
            };
            if !worth_pulling {
                continue;
            }
            let pulled =
                match crate::fleet::pull_artifact(peer.as_str(), ad.fingerprint, FLEET_TIMEOUT) {
                    Ok(p) => p,
                    Err(e) => {
                        ctx.fleet.record_rejected();
                        eprintln!(
                            "pdbt-serve: pull of {:016x} from {peer} failed: {e}",
                            ad.fingerprint
                        );
                        continue;
                    }
                };
            ctx.fleet.record_pulled();
            ctx.fleet.record_bytes(pulled.bytes.len() as u64);
            let _plane = ctx.replication.lock().expect("replication lock poisoned");
            let (adopted, reason, _) =
                adopt_artifact(ctx, &pulled.bytes, pulled.generation, ad.fingerprint);
            if !adopted {
                eprintln!(
                    "pdbt-serve: pulled artifact {:016x} from {peer} not adopted: {reason}",
                    ad.fingerprint
                );
            }
        }
    }
}

/// Drain write-back: every partition whose current seal has moved past
/// what the artifact dir holds is written out under its generation
/// file name. Runs after the queue quiesced, so the seals are final.
fn write_back(ctx: &ServerCtx, dir: &std::path::Path) {
    let _plane = ctx.replication.lock().expect("replication lock poisoned");
    let mut fps: Vec<u64> = {
        let map = ctx.states.lock().expect("state map poisoned");
        map.keys().copied().collect()
    };
    fps.sort_unstable();
    for fp in fps {
        let Some((sealed, version)) = seal_partition(ctx, fp) else {
            continue;
        };
        let stale = {
            let replicas = ctx.replicas.lock().expect("replica map poisoned");
            replicas
                .get(&fp)
                .is_none_or(|m| m.disk_generation.is_none_or(|g| version.generation > g))
        };
        if !stale {
            continue;
        }
        let path = dir.join(artifact_file_name(fp, version.generation));
        match std::fs::write(&path, sealed.as_slice()) {
            Ok(()) => {
                ctx.fleet.record_written_back();
                ctx.fleet.record_bytes(sealed.len() as u64);
                if let Some(m) = ctx
                    .replicas
                    .lock()
                    .expect("replica map poisoned")
                    .get_mut(&fp)
                {
                    m.disk_generation = Some(version.generation);
                }
            }
            Err(e) => {
                eprintln!("pdbt-serve: write-back to {} failed: {e}", path.display());
            }
        }
    }
}

/// The guest a request resolved to: a memoized benchmark corpus or an
/// inline assembly listing.
enum Guest {
    Workload(Arc<Workload>),
    Inline(pdbt_isa_arm::Program),
}

impl Guest {
    fn program(&self) -> &pdbt_isa_arm::Program {
        match self {
            Guest::Workload(w) => &w.pair.guest.program,
            Guest::Inline(p) => p,
        }
    }
}

/// Fingerprints a guest image (base address + encoded instruction
/// words) to pick its translation-state partition. This value is now
/// *persisted* — sealed into PDBA artifacts and matched against them at
/// boot — so it must be stable across processes, platforms, and Rust
/// releases; [`pdbt_isa_arm::Program::fingerprint`] (seeded FNV-1a with
/// a splitmix64 finalizer) is, where the `DefaultHasher` previously
/// used here explicitly is not.
fn image_fingerprint(prog: &pdbt_isa_arm::Program) -> u64 {
    prog.fingerprint()
}

/// What the bind-time artifact scan produced.
#[derive(Debug, Default)]
struct BootScan {
    states: HashMap<u64, Arc<SharedTranslationState>>,
    labels: HashMap<u64, String>,
    replicas: HashMap<u64, ReplicaMeta>,
    boot: ArtifactBoot,
}

/// The bind-time artifact scan: every `*.pdba` file in `dir` (sorted by
/// name for deterministic scan order) is opened in salvage mode; the
/// survivors are deduplicated by guest-image fingerprint keeping the
/// *newest* [`ArtifactVersion`] (file-name generation, section CRCs as
/// the tie-break — never scan order), and each winner pre-creates its
/// image's translation-state partition. Shadowed duplicates are
/// counted as rejects, not silently dropped.
///
/// Failure is never fatal and never aborts the scan: an unreadable or
/// rejected artifact is counted and logged, and that image simply boots
/// cold when its first request arrives. When an artifact carries no
/// ruleset — or its RULE section was quarantined — the partition falls
/// back to the server's own rules, exactly as a cold partition would.
fn load_artifacts(
    dir: &std::path::Path,
    rules: Option<&RuleSet>,
    cache_shards: usize,
    slots: usize,
) -> BootScan {
    let mut scan = BootScan::default();
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "pdba"))
            .collect(),
        Err(e) => {
            eprintln!(
                "pdbt-serve: artifact dir {} unreadable ({e}); booting cold",
                dir.display()
            );
            return scan;
        }
    };
    paths.sort();
    let mut candidates = Vec::new();
    for path in paths {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("pdbt-serve: artifact {} unreadable: {e}", path.display());
                scan.boot.rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let opened = match pdbt_artifact::open_salvage(&bytes) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("pdbt-serve: artifact {} rejected: {e}", path.display());
                scan.boot.rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let generation = parse_generation(&path);
        let version = match ArtifactVersion::of_bytes(generation, &bytes) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("pdbt-serve: artifact {} rejected: {e}", path.display());
                scan.boot.rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let fingerprint = opened.artifact.fingerprint();
        candidates.push((fingerprint, version, (path, bytes, opened)));
    }
    let (winners, shadowed) = dedupe_newest(candidates);
    if shadowed > 0 {
        eprintln!(
            "pdbt-serve: {shadowed} duplicate artifact(s) shadowed by newer generations in {}",
            dir.display()
        );
        scan.boot.rejected.fetch_add(shadowed, Ordering::Relaxed);
    }
    for (fingerprint, version, (path, bytes, opened)) in winners {
        for q in &opened.quarantined {
            eprintln!(
                "pdbt-serve: artifact {}: section {} quarantined: {}",
                path.display(),
                q.section,
                q.reason
            );
        }
        scan.boot
            .sections_quarantined
            .fetch_add(opened.quarantined.len() as u64, Ordering::Relaxed);
        let label = if opened.artifact.label.is_empty() {
            path.file_stem().map_or_else(
                || "artifact".to_string(),
                |s| s.to_string_lossy().into_owned(),
            )
        } else {
            opened.artifact.label.clone()
        };
        let state = pdbt_artifact::warm_state(&opened, rules, cache_shards, slots);
        scan.replicas.insert(
            fingerprint,
            ReplicaMeta {
                label: label.clone(),
                program: opened.artifact.program.clone(),
                version,
                // A salvaged (partially quarantined) file is not worth
                // advertising: leave `sealed` empty so the first peer
                // interaction re-seals clean content from live state.
                sealed: opened.quarantined.is_empty().then(|| Arc::new(bytes)),
                sealed_blocks: opened.artifact.blocks.len(),
                disk_generation: Some(version.generation),
            },
        );
        scan.states.insert(fingerprint, Arc::new(state));
        scan.labels.insert(fingerprint, label);
        scan.boot.loaded.fetch_add(1, Ordering::Relaxed);
    }
    scan
}

/// Resolves the request's guest program, base run setup, and label.
fn resolve_guest(ctx: &ServerCtx, req: &Json) -> Result<(Guest, RunSetup, String), String> {
    if let Some(name) = req.get("workload").and_then(Json::as_str) {
        let bench = Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| format!("unknown workload `{name}`"))?;
        let scale_name = req.get("scale").and_then(Json::as_str).unwrap_or("tiny");
        let scale = match scale_name {
            "tiny" => Scale::tiny(),
            "full" => Scale::full(),
            other => return Err(format!("unknown scale `{other}` (want tiny|full)")),
        };
        let key = (name.to_string(), scale_name.to_string());
        let w = {
            let mut map = ctx.workloads.lock().expect("workload cache poisoned");
            Arc::clone(
                map.entry(key)
                    .or_insert_with(|| Arc::new(build(bench, scale))),
            )
        };
        let setup = w.setup();
        Ok((Guest::Workload(w), setup, format!("{name}/{scale_name}")))
    } else if let Some(text) = req.get("program").and_then(Json::as_str) {
        let insts = pdbt_isa_arm::parse_listing(text).map_err(|e| format!("program: {e}"))?;
        let prog = pdbt_isa_arm::Program::new(0x1000, insts);
        // The CLI `run` memory layout: data at 0x100000, stack at
        // 0x80000.
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        Ok((Guest::Inline(prog), setup, "inline".to_string()))
    } else {
        Err("request needs a `workload` name or an inline `program` listing".to_string())
    }
}

/// What the flight recorder needs to know about a finished session,
/// handed from [`run_request`] back to [`serve_request`] (which adds
/// the phase stamps only it can measure).
struct RequestTelemetry {
    /// The partition the session ran against (for recording into its
    /// telemetry plane).
    shared: Arc<SharedTranslationState>,
    partition: u64,
    outcome: String,
    /// Time inside the translator, from the session's own histogram.
    translate_ns: u64,
    /// Total faults injected during the run.
    injected: u64,
    /// The raw `faults` spec armed for the run, empty when none.
    fault_sites: String,
}

/// Runs one request on the calling (worker) thread and builds the
/// RESULT payload.
fn run_request(ctx: &ServerCtx, req: &Json) -> Result<(Json, RequestTelemetry), String> {
    let id = req.get("id").and_then(Json::as_u64).unwrap_or(0);
    let (guest, mut setup, label) = resolve_guest(ctx, req)?;
    if let Some(mg) = req.get("max_guest").and_then(Json::as_u64) {
        setup.max_guest = mg;
    }
    let deadline_ms = req
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .or(ctx.default_deadline_ms);
    if let Some(ms) = deadline_ms {
        setup.deadline = Some(Instant::now() + Duration::from_millis(ms));
    }
    let fault_spec = req.get("faults").and_then(Json::as_str).unwrap_or("");
    let plan = match req.get("faults").and_then(Json::as_str) {
        Some(spec) => {
            Some(pdbt_faults::Plan::parse(spec).map_err(|e| format!("bad faults spec: {e}"))?)
        }
        None => None,
    };
    // Sessions are single-threaded; concurrency comes from the queue.
    // The server records the full request lifecycle itself (queue wait
    // and reply write included), so the engine's own end-of-run
    // telemetry recording is turned off — one summary per request.
    let mut cfg = EngineConfig {
        jobs: 1,
        record_telemetry: false,
        backend: ctx.backend,
        ..EngineConfig::default()
    };
    cfg.translate.flag_delegation = !req
        .get("no_delegation")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let partition = image_fingerprint(guest.program());
    let shared = ctx.state_for(partition, &label, guest.program());
    // Request-scoped fault arming: armed with this request's plan, or
    // explicitly shielded from any process-global plan. Installed after
    // workload resolution so corpus builds are never degraded.
    let _guard = pdbt_faults::scoped(plan);
    let mut engine = Engine::with_shared(Arc::clone(&shared), cfg);
    let report = engine
        .run(guest.program(), &setup)
        .map_err(|e| e.to_string())?;
    let telemetry = RequestTelemetry {
        shared,
        partition,
        outcome: report.outcome.label().to_string(),
        translate_ns: report.obs.translate_ns.sum(),
        injected: report.resilience.injected.iter().sum(),
        fault_sites: fault_spec.to_string(),
    };
    let resp = Json::obj([
        ("id", Json::from(id)),
        ("workload", Json::str(label)),
        ("outcome", Json::str(report.outcome.label())),
        ("faults_enabled", Json::from(pdbt_faults::ENABLED)),
        ("report", report.to_json()),
    ]);
    Ok((resp, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    /// One guest both unit tests run: prints 42, exits.
    const GUEST: &str = "mov r0, #41\nadd r0, r0, #1\nsvc #1\nsvc #0\n";

    fn spawn_server(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<ServeSummary>) {
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        (addr, handle)
    }

    fn output_of(resp: &Json) -> Vec<u64> {
        resp.get("report")
            .and_then(|r| r.get("output"))
            .and_then(Json::as_arr)
            .expect("report.output")
            .iter()
            .filter_map(Json::as_u64)
            .collect()
    }

    #[test]
    fn ping_submit_and_shutdown_roundtrip() {
        let (addr, handle) = spawn_server(ServeConfig::default());
        let t = Duration::from_secs(30);

        let pong = client::ping(addr, t).expect("ping");
        assert_eq!(pong.get("version").and_then(Json::as_u64), Some(1));

        let req = Json::obj([("id", Json::from(7u64)), ("program", Json::str(GUEST))]);
        let resp = client::submit(addr, &req, t).expect("submit");
        assert_eq!(resp.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            resp.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        assert_eq!(output_of(&resp), [42]);

        client::shutdown(addr, t).expect("shutdown");
        let summary = handle.join().unwrap();
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.panicked, 0);
    }

    #[test]
    fn distinct_guest_images_never_share_translations() {
        // Two different programs, both loaded at 0x1000: the second
        // must not execute the first one's cached block (regression for
        // pc-keyed cache collisions across images).
        let (addr, handle) = spawn_server(ServeConfig::default());
        let t = Duration::from_secs(30);

        let a = Json::obj([("program", Json::str(GUEST))]);
        let b = Json::obj([(
            "program",
            Json::str("mov r0, #9\nmul r0, r0, r0\nsvc #1\nsvc #0\n"),
        )]);
        let ra = client::submit(addr, &a, t).expect("submit a");
        let rb = client::submit(addr, &b, t).expect("submit b");
        assert_eq!(output_of(&ra), [42]);
        assert_eq!(output_of(&rb), [81]);

        // Two partitions, no cross-image cache hits.
        let pong = client::ping(addr, t).expect("ping");
        assert_eq!(pong.get("images").and_then(Json::as_u64), Some(2));
        let server = pong.get("server").expect("server section");
        assert_eq!(server.get("hits").and_then(Json::as_u64), Some(0));

        // The same image again *does* share: one more probe, no insert.
        let ra2 = client::submit(addr, &a, t).expect("submit a again");
        assert_eq!(output_of(&ra2), [42]);
        let pong = client::ping(addr, t).expect("ping");
        let server = pong.get("server").expect("server section");
        assert_eq!(server.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(pong.get("images").and_then(Json::as_u64), Some(2));

        client::shutdown(addr, t).expect("shutdown");
        handle.join().unwrap();
    }

    #[test]
    fn bad_requests_get_error_responses_and_the_server_survives() {
        let (addr, handle) = spawn_server(ServeConfig::default());
        let t = Duration::from_secs(30);

        // Unknown workload.
        let req = Json::obj([("workload", Json::str("nosuch"))]);
        let err = client::submit(addr, &req, t).unwrap_err();
        assert!(matches!(err, client::ClientError::Remote(_)), "{err}");

        // Neither workload nor program.
        let err = client::submit(addr, &Json::obj([("id", Json::from(1u64))]), t).unwrap_err();
        assert!(matches!(err, client::ClientError::Remote(_)), "{err}");

        // Malformed fault spec.
        let req = Json::obj([
            ("program", Json::str(GUEST)),
            ("faults", Json::str("rate=not-a-number")),
        ]);
        let err = client::submit(addr, &req, t).unwrap_err();
        assert!(matches!(err, client::ClientError::Remote(_)), "{err}");

        // A good request still works afterwards.
        let req = Json::obj([("program", Json::str(GUEST))]);
        let resp = client::submit(addr, &req, t).expect("submit after errors");
        assert_eq!(
            resp.get("outcome").and_then(Json::as_str),
            Some("completed")
        );

        client::shutdown(addr, t).expect("shutdown");
        handle.join().unwrap();
    }

    #[test]
    fn artifact_dir_warm_boots_the_matching_partition() {
        // Seal GUEST's translations into an artifact, boot a server
        // from the directory, and check the very first request for
        // that image translates nothing.
        let insts = pdbt_isa_arm::parse_listing(GUEST).unwrap();
        let prog = pdbt_isa_arm::Program::new(0x1000, insts);
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let artifact =
            pdbt_artifact::compile(&prog, None, &setup, EngineConfig::default(), "inline-guest")
                .expect("compile");
        let dir =
            std::env::temp_dir().join(format!("pdbt-serve-artifact-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("guest.pdba"), pdbt_artifact::seal(&artifact)).unwrap();
        // A second, unloadable file must be counted, not fatal.
        std::fs::write(dir.join("junk.pdba"), b"not an artifact").unwrap();

        let (addr, handle) = spawn_server(ServeConfig {
            artifact_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let t = Duration::from_secs(30);

        let pong = client::ping(addr, t).expect("ping");
        let arts = pong.get("artifacts").expect("artifacts section");
        assert_eq!(arts.get("loaded").and_then(Json::as_u64), Some(1));
        assert_eq!(arts.get("rejected").and_then(Json::as_u64), Some(1));
        assert_eq!(
            arts.get("sections_quarantined").and_then(Json::as_u64),
            Some(0)
        );
        // The partition exists before any request arrives.
        assert_eq!(pong.get("images").and_then(Json::as_u64), Some(1));

        let req = Json::obj([("id", Json::from(1u64)), ("program", Json::str(GUEST))]);
        let resp = client::submit(addr, &req, t).expect("submit");
        assert_eq!(output_of(&resp), [42]);

        // Zero live translation work: the artifact answered everything.
        let pong = client::ping(addr, t).expect("ping");
        let server = pong.get("server").expect("server section");
        assert_eq!(
            server.get("translate_calls").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(server.get("inserted").and_then(Json::as_u64), Some(0));
        assert_eq!(server.get("sessions").and_then(Json::as_u64), Some(1));

        client::shutdown(addr, t).expect("shutdown");
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadline_reports_a_deadline_outcome() {
        let (addr, handle) = spawn_server(ServeConfig::default());
        let t = Duration::from_secs(30);
        // An infinite loop, bounded only by the deadline.
        let req = Json::obj([
            ("program", Json::str("mov r0, #1\nb .+0\nsvc #0\n")),
            ("deadline_ms", Json::from(0u64)),
        ]);
        let resp = client::submit(addr, &req, t).expect("submit");
        assert_eq!(resp.get("outcome").and_then(Json::as_str), Some("deadline"));
        client::shutdown(addr, t).expect("shutdown");
        handle.join().unwrap();
    }
}
