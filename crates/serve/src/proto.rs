//! The wire protocol: length-prefixed, versioned binary frames over a
//! byte stream, with JSON payloads (see `pdbt_obs::json`).
//!
//! Every frame is a fixed 12-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "PDBT"
//!      4     1  version (currently 1)
//!      5     1  opcode
//!      6     2  reserved (zero)
//!      8     4  payload length, big-endian
//!     12     n  payload (UTF-8 JSON; empty for PING/SHUTDOWN)
//! ```
//!
//! The magic catches a client speaking the wrong protocol at byte 0
//! instead of after a mis-sized read; the explicit version lets a
//! future frame layout be rejected loudly rather than misparsed. The
//! payload length is capped ([`MAX_PAYLOAD`]) so a corrupt header
//! cannot provoke a multi-gigabyte allocation.
//!
//! Request opcodes come from the client (`SUBMIT`, `PING`,
//! `SHUTDOWN`, `STATS`, and the fleet's `ART_LIST`/`ART_PULL`/
//! `ART_PUSH`); response opcodes have the top bit set (`RESULT`,
//! `ERROR`, `PONG`). One request frame per connection, answered by
//! exactly one response frame — except artifact transfers, which
//! follow their JSON header frame with a counted run of raw
//! [`op::ART_DATA`] chunk frames on the same connection, so a sealed
//! artifact larger than [`MAX_PAYLOAD`] can still cross the wire.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PDBT";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame payload; larger lengths are rejected before
/// allocating.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame opcodes. Requests are < 0x80, responses have the top bit set.
pub mod op {
    /// Client → server: run a guest (JSON request payload).
    pub const SUBMIT: u8 = 0x01;
    /// Client → server: health/status probe (empty payload).
    pub const PING: u8 = 0x02;
    /// Client → server: stop accepting, drain in-flight sessions.
    pub const SHUTDOWN: u8 = 0x03;
    /// Client → server: live telemetry snapshot (empty payload).
    /// Answered inline by the accept loop — like `PING`, it works even
    /// when every session worker is busy — with a `PONG` frame carrying
    /// the point-in-time stats JSON (monotone `stats_seq`, uptime,
    /// queue depth, per-partition latency quantiles, flight-recorder
    /// tail).
    pub const STATS: u8 = 0x04;
    /// Peer → server: advertise your sealed artifacts (empty payload).
    /// Answered with a `RESULT` frame listing, per partition, the
    /// guest-image fingerprint (hex), generation, section CRCs, and
    /// block/trace counts — everything a peer needs to decide what to
    /// pull.
    pub const ART_LIST: u8 = 0x05;
    /// Peer → server: stream a sealed artifact by fingerprint (JSON
    /// `{"fingerprint": "<hex>"}` payload). Answered with a `RESULT`
    /// header frame (`generation`, `bytes`, `chunks`, `crc32`) followed
    /// by that many [`ART_DATA`] frames — the one place the protocol's
    /// one-frame-per-direction rule bends, so artifacts larger than
    /// [`MAX_PAYLOAD`](super::MAX_PAYLOAD) can cross it.
    pub const ART_PULL: u8 = 0x06;
    /// Peer → server: offer a sealed artifact (JSON header payload with
    /// `fingerprint`, `generation`, `bytes`, `chunks`, `crc32`,
    /// `label`), followed by `chunks` [`ART_DATA`] frames on the same
    /// connection. The receiver reassembles, checks length and CRC,
    /// then applies the wire trust boundary (`pdbt_fleet::validate`)
    /// and the generation order before adopting; it answers with one
    /// `RESULT` frame (`adopted`, `reason`, `generation`).
    pub const ART_PUSH: u8 = 0x07;
    /// A raw binary artifact chunk (at most `pdbt_fleet::CHUNK` bytes),
    /// the continuation frame of [`ART_PULL`] and [`ART_PUSH`]
    /// streams. Direction-agnostic: the stream it continues determines
    /// who sends it.
    pub const ART_DATA: u8 = 0x08;
    /// Server → client: a completed run's report (JSON payload).
    pub const RESULT: u8 = 0x81;
    /// Server → client: request failed (JSON `{"error": …}` payload).
    pub const ERROR: u8 = 0x82;
    /// Server → client: reply to PING/SHUTDOWN (JSON status payload).
    pub const PONG: u8 = 0x83;
}

/// A decoded frame: opcode plus raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's opcode (see [`op`]).
    pub opcode: u8,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// The payload as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadPayload`] when the payload is not UTF-8.
    pub fn payload_str(&self) -> Result<&str, FrameError> {
        std::str::from_utf8(&self.payload).map_err(|_| FrameError::BadPayload)
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes short reads / EOF).
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// The payload was not valid UTF-8 where text was required.
    BadPayload,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this side speaks {VERSION})"
                )
            }
            FrameError::TooLarge(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            FrameError::BadPayload => write!(f, "payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Forwarded i/o errors.
///
/// # Panics
///
/// If `payload` exceeds [`MAX_PAYLOAD`] — a caller bug, not a peer
/// condition.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload exceeds MAX_PAYLOAD"
    );
    let mut hdr = [0u8; HEADER_LEN];
    hdr[..4].copy_from_slice(&MAGIC);
    hdr[4] = VERSION;
    hdr[5] = opcode;
    hdr[8..12].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&hdr)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, validating magic, version, and payload length
/// before allocating.
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut hdr = [0u8; HEADER_LEN];
    r.read_exact(&mut hdr)?;
    if hdr[..4] != MAGIC {
        return Err(FrameError::BadMagic([hdr[0], hdr[1], hdr[2], hdr[3]]));
    }
    if hdr[4] != VERSION {
        return Err(FrameError::BadVersion(hdr[4]));
    }
    let len = u32::from_be_bytes(hdr[8..12].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        opcode: hdr[5],
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::SUBMIT, b"{\"id\":1}").unwrap();
        write_frame(&mut buf, op::PING, b"").unwrap();
        let mut r = buf.as_slice();
        let a = read_frame(&mut r).unwrap();
        assert_eq!(a.opcode, op::SUBMIT);
        assert_eq!(a.payload_str().unwrap(), "{\"id\":1}");
        let b = read_frame(&mut r).unwrap();
        assert_eq!(b.opcode, op::PING);
        assert!(b.payload.is_empty());
        assert!(r.is_empty(), "no trailing bytes");
    }

    #[test]
    fn bad_magic_version_and_length_are_rejected() {
        let mut good = Vec::new();
        write_frame(&mut good, op::PING, b"").unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::BadVersion(99))
        ));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_streams_error_not_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::RESULT, b"{\"ok\":true}").unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, buf.len() - 1] {
            assert!(
                matches!(read_frame(&mut &buf[..cut]), Err(FrameError::Io(_))),
                "cut at {cut} should be an i/o error"
            );
        }
    }
}
