//! The client side: connect, send one request frame, read one response
//! frame. Used by `pdbt submit` and by the integration tests; kept
//! symmetrical with the server so the protocol has exactly one
//! implementation of each direction.

use crate::proto::{self, op, FrameError};
use pdbt_obs::json::Json;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or socket i/o failed.
    Io(io::Error),
    /// The response frame was malformed.
    Frame(FrameError),
    /// The peer answered with an unexpected opcode or payload shape.
    Protocol(String),
    /// The server processed the request and reported an error.
    Remote(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol frame error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

/// One request/response exchange on a fresh connection.
fn roundtrip(
    addr: impl ToSocketAddrs,
    opcode: u8,
    payload: &[u8],
    timeout: Duration,
) -> Result<proto::Frame, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    proto::write_frame(&mut stream, opcode, payload)?;
    Ok(proto::read_frame(&mut stream)?)
}

/// Parses a response frame that must be `want` with a JSON payload;
/// turns `ERROR` frames into [`ClientError::Remote`].
fn expect_json(frame: proto::Frame, want: u8) -> Result<Json, ClientError> {
    let text = frame
        .payload_str()
        .map_err(|_| ClientError::Protocol("response payload is not UTF-8".into()))?;
    let json = Json::parse(text)
        .map_err(|e| ClientError::Protocol(format!("response payload is not JSON: {e}")))?;
    if frame.opcode == op::ERROR {
        let msg = json
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error");
        return Err(ClientError::Remote(msg.to_string()));
    }
    if frame.opcode != want {
        return Err(ClientError::Protocol(format!(
            "unexpected response opcode {:#04x}",
            frame.opcode
        )));
    }
    Ok(json)
}

/// Submits a run request and returns the RESULT payload (`id`,
/// `workload`, `outcome`, `report`).
///
/// The timeout bounds each socket operation; pick one comfortably
/// above the request's `deadline_ms` or the session will outlive the
/// client waiting for it.
///
/// # Errors
///
/// See [`ClientError`].
pub fn submit(
    addr: impl ToSocketAddrs,
    request: &Json,
    timeout: Duration,
) -> Result<Json, ClientError> {
    let frame = roundtrip(addr, op::SUBMIT, request.to_string().as_bytes(), timeout)?;
    expect_json(frame, op::RESULT)
}

/// Pings the server, returning its status payload (protocol version,
/// queue occupancy, server-lifetime counters).
///
/// # Errors
///
/// See [`ClientError`].
pub fn ping(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Json, ClientError> {
    let frame = roundtrip(addr, op::PING, b"", timeout)?;
    expect_json(frame, op::PONG)
}

/// Asks the server to stop accepting and drain; returns the
/// acknowledgement payload. In-flight sessions still complete after
/// this returns.
///
/// # Errors
///
/// See [`ClientError`].
pub fn shutdown(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Json, ClientError> {
    let frame = roundtrip(addr, op::SHUTDOWN, b"", timeout)?;
    expect_json(frame, op::PONG)
}

/// Fetches the server's live telemetry snapshot: a monotone
/// `stats_seq`, uptime, sessions served/active/panicked, queue depth
/// and pool accounting, the summed server counters, per-partition
/// latency quantiles, the merged latency histograms, and the
/// flight-recorder tail. Answered inline by the accept loop, so it
/// works while every session worker is busy.
///
/// # Errors
///
/// See [`ClientError`].
pub fn stats(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Json, ClientError> {
    let frame = roundtrip(addr, op::STATS, b"", timeout)?;
    expect_json(frame, op::PONG)
}
