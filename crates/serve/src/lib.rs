//! `pdbt-serve` — the multi-session translation service.
//!
//! A zero-dependency (`std::net`) TCP daemon that accepts guest-run
//! requests over a length-prefixed, versioned binary protocol
//! ([`proto`]) and multiplexes them onto a pool of session workers
//! (`pdbt_par::TaskQueue`). All sessions share one
//! [`pdbt_runtime::SharedTranslationState`] — ruleset plus warm code
//! cache — so the first session translates a block and every later
//! session reuses the translation, which is how the paper's
//! train-once-amortize-forever economics extend from translations
//! *within* a run to translations *across* runs.
//!
//! What stays per-session: metrics, attribution, dispatch state (jump
//! cache, chain links, superblocks), resilience counters, and the
//! report. A session's stripped report is bit-identical to a cold
//! standalone run; only wall-clock and the server-lifetime counters
//! reveal the sharing.
//!
//! # Quickstart
//!
//! ```no_run
//! use pdbt_obs::json::Json;
//! use pdbt_serve::{submit, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.serve().unwrap());
//!
//! let req = Json::obj([
//!     ("workload", Json::str("mcf")),
//!     ("scale", Json::str("tiny")),
//! ]);
//! let resp = submit(addr, &req, Duration::from_secs(60)).unwrap();
//! assert_eq!(resp.get("outcome").and_then(Json::as_str), Some("completed"));
//! ```

mod client;
pub mod fleet;
pub mod loadgen;
pub mod proto;
mod server;

pub use client::{ping, shutdown, stats, submit, ClientError};
pub use fleet::{list_artifacts, pull_artifact, push_artifact, PulledArtifact};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use server::{ServeConfig, ServeSummary, Server};
