//! The replication-plane client: the peer-facing side of the
//! `ART_LIST` / `ART_PULL` / `ART_PUSH` frames. A daemon started with
//! `--peer` uses these to pull artifacts at boot and on its refresh
//! tick; `pdbt sync` uses them to mirror a daemon's artifacts to disk;
//! tests use [`push_artifact`] to drive the wire trust boundary.
//!
//! Artifact transfers are the one multi-frame exchange in the
//! protocol: a JSON header frame declares `bytes`, `chunks`, and a
//! whole-artifact `crc32`, then exactly `chunks` raw
//! [`op::ART_DATA`](crate::proto::op::ART_DATA) frames follow on the
//! same connection. The receiver verifies the declared length and CRC
//! before anything else looks at the bytes.

use crate::client::ClientError;
use crate::proto::{self, op};
use pdbt_fleet::{chunk_count, ArtifactAd, CHUNK, MAX_ARTIFACT};
use pdbt_obs::json::Json;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A sealed artifact fetched from a peer, CRC-verified but not yet
/// validated against the trust boundary (see `pdbt_fleet::validate`).
#[derive(Debug, Clone)]
pub struct PulledArtifact {
    /// The fingerprint the peer served it under.
    pub fingerprint: u64,
    /// The peer's generation for it.
    pub generation: u64,
    /// The peer's partition label.
    pub label: String,
    /// The sealed PDBA bytes.
    pub bytes: Vec<u8>,
}

fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<TcpStream, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

/// Reads a frame that must be a JSON `RESULT`; unwraps `ERROR` frames
/// into [`ClientError::Remote`].
fn read_result(stream: &mut TcpStream) -> Result<Json, ClientError> {
    let frame = proto::read_frame(stream)?;
    let text = frame
        .payload_str()
        .map_err(|_| ClientError::Protocol("response payload is not UTF-8".into()))?;
    let json = Json::parse(text)
        .map_err(|e| ClientError::Protocol(format!("response payload is not JSON: {e}")))?;
    if frame.opcode == op::ERROR {
        let msg = json
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unspecified server error");
        return Err(ClientError::Remote(msg.to_string()));
    }
    if frame.opcode != op::RESULT {
        return Err(ClientError::Protocol(format!(
            "unexpected response opcode {:#04x}",
            frame.opcode
        )));
    }
    Ok(json)
}

/// Asks a peer for its artifact advertisements: one entry per sealed
/// partition with the fingerprint, version (generation + section
/// CRCs), block/trace counts, and sealed size.
///
/// # Errors
///
/// See [`ClientError`].
pub fn list_artifacts(
    addr: impl ToSocketAddrs,
    timeout: Duration,
) -> Result<Vec<ArtifactAd>, ClientError> {
    let mut stream = connect(addr, timeout)?;
    proto::write_frame(&mut stream, op::ART_LIST, b"")?;
    let json = read_result(&mut stream)?;
    json.get("artifacts")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Protocol("ART_LIST reply lacks `artifacts`".into()))?
        .iter()
        .map(|ad| ArtifactAd::from_json(ad).map_err(ClientError::Protocol))
        .collect()
}

/// Streams one sealed artifact down from a peer, reassembles the
/// chunk frames, and verifies the declared length and CRC-32. The
/// caller still owes the trust-boundary validation before adopting.
///
/// # Errors
///
/// See [`ClientError`]; a length or CRC mismatch is a
/// [`ClientError::Protocol`].
pub fn pull_artifact(
    addr: impl ToSocketAddrs,
    fingerprint: u64,
    timeout: Duration,
) -> Result<PulledArtifact, ClientError> {
    let mut stream = connect(addr, timeout)?;
    let req = Json::obj([("fingerprint", Json::str(format!("{fingerprint:016x}")))]);
    proto::write_frame(&mut stream, op::ART_PULL, req.to_string().as_bytes())?;
    let header = read_result(&mut stream)?;
    let need = |field: &str| {
        header
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("ART_PULL header lacks `{field}`")))
    };
    let generation = need("generation")?;
    let total = need("bytes")?;
    let chunks = need("chunks")?;
    let crc = need("crc32")?;
    let label = header
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    if total > MAX_ARTIFACT {
        return Err(ClientError::Protocol(format!(
            "peer declares a {total}-byte artifact (cap {MAX_ARTIFACT})"
        )));
    }
    if chunks != chunk_count(total as usize) as u64 {
        return Err(ClientError::Protocol(format!(
            "peer declares {chunks} chunks for {total} bytes"
        )));
    }
    let mut bytes = Vec::with_capacity(total as usize);
    for _ in 0..chunks {
        let frame = proto::read_frame(&mut stream)?;
        if frame.opcode != op::ART_DATA {
            return Err(ClientError::Protocol(format!(
                "expected ART_DATA continuation, got opcode {:#04x}",
                frame.opcode
            )));
        }
        if frame.payload.len() > CHUNK || bytes.len() + frame.payload.len() > total as usize {
            return Err(ClientError::Protocol("oversized artifact chunk".into()));
        }
        bytes.extend_from_slice(&frame.payload);
    }
    if bytes.len() as u64 != total {
        return Err(ClientError::Protocol(format!(
            "artifact transfer is {} bytes, header declared {total}",
            bytes.len()
        )));
    }
    if u64::from(pdbt_artifact::bytes::crc32(&bytes)) != crc {
        return Err(ClientError::Protocol(
            "artifact transfer fails its declared CRC".into(),
        ));
    }
    Ok(PulledArtifact {
        fingerprint,
        generation,
        label,
        bytes,
    })
}

/// Offers a sealed artifact to a peer: header frame, then the chunk
/// frames, then the peer's verdict (`{"adopted": …, "reason": …,
/// "generation": …}`). The peer applies the trust boundary and the
/// generation order; a refusal is a normal reply, not an error.
///
/// # Errors
///
/// See [`ClientError`].
pub fn push_artifact(
    addr: impl ToSocketAddrs,
    fingerprint: u64,
    generation: u64,
    label: &str,
    bytes: &[u8],
    timeout: Duration,
) -> Result<Json, ClientError> {
    let mut stream = connect(addr, timeout)?;
    let header = Json::obj([
        ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
        ("generation", Json::from(generation)),
        ("bytes", Json::from(bytes.len() as u64)),
        ("chunks", Json::from(chunk_count(bytes.len()) as u64)),
        (
            "crc32",
            Json::from(u64::from(pdbt_artifact::bytes::crc32(bytes))),
        ),
        ("label", Json::str(label)),
    ]);
    proto::write_frame(&mut stream, op::ART_PUSH, header.to_string().as_bytes())?;
    for chunk in bytes.chunks(CHUNK) {
        proto::write_frame(&mut stream, op::ART_DATA, chunk)?;
    }
    read_result(&mut stream)
}
