//! Property tests: host instructions survive the variable-length binary
//! encode/decode roundtrip, and arbitrary bytes never panic the decoder.

use pdbt_isa_x86::{builders as h, decode, encode, Cc, Inst, Mem, Operand, Reg, Xmm};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0usize..8).prop_map(|i| Reg::from_index(i).unwrap())
}

fn mem() -> impl Strategy<Value = Mem> {
    (
        proptest::option::of(reg()),
        proptest::option::of(reg()),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| Mem { base, index, disp })
}

fn rm() -> impl Strategy<Value = Operand> {
    prop_oneof![reg().prop_map(Operand::Reg), mem().prop_map(Operand::Mem)]
}

fn rmi() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        mem().prop_map(Operand::Mem),
        any::<i32>().prop_map(Operand::Imm),
    ]
}

fn cc() -> impl Strategy<Value = Cc> {
    (0usize..14).prop_map(|i| Cc::ALL[i])
}

fn not_both_mem(a: &Operand, b: &Operand) -> bool {
    !(matches!(a, Operand::Mem(_)) && matches!(b, Operand::Mem(_)))
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (0usize..15, rm(), rmi())
            .prop_filter("mem-mem is illegal", |(_, a, b)| not_both_mem(a, b))
            .prop_map(|(opi, dst, src)| {
                type B = fn(Operand, Operand) -> Inst;
                const OPS: [B; 15] = [
                    h::mov,
                    h::add,
                    h::adc,
                    h::sub,
                    h::sbb,
                    h::and,
                    h::or,
                    h::xor,
                    h::imul,
                    h::shl,
                    h::shr,
                    h::sar,
                    h::ror,
                    h::cmp,
                    h::test,
                ];
                OPS[opi](dst, src)
            }),
        rm().prop_map(h::not),
        rm().prop_map(h::neg),
        rm().prop_map(h::mul_wide),
        rm().prop_map(h::push),
        rm().prop_map(h::pop),
        (reg(), rm()).prop_map(|(d, s)| h::bsr(d.into(), s)),
        (reg(), mem()).prop_map(|(d, m)| h::lea(d.into(), m.into())),
        (reg(), mem()).prop_map(|(d, m)| h::movzxb(d.into(), m.into())),
        (mem(), reg()).prop_map(|(m, s)| h::movb(m.into(), s.into())),
        any::<i32>().prop_map(h::jmp_rel),
        rmi().prop_map(h::jmp_exit),
        (cc(), any::<i32>()).prop_map(|(c, d)| h::jcc(c, d)),
        (cc(), rm()).prop_map(|(c, d)| h::setcc(c, d)),
        Just(h::ret()),
        Just(h::out()),
        Just(h::hlt()),
        (0u8..8, 0u8..8).prop_map(|(a, b)| h::addss(Xmm::new(a), Xmm::new(b).into())),
        (0u8..8, mem()).prop_map(|(a, m)| h::movss(Xmm::new(a).into(), m.into())),
        (0u8..8, 0u8..8).prop_map(|(a, b)| h::ucomiss(Xmm::new(a), Xmm::new(b).into())),
    ]
}

proptest! {
    #[test]
    fn binary_roundtrip(i in inst()) {
        let bytes = encode(&i).expect("valid instructions encode");
        let (back, used) = decode(&bytes).expect("encoded bytes decode");
        prop_assert_eq!(back, i);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn block_roundtrip(is in proptest::collection::vec(inst(), 0..12)) {
        let bytes = pdbt_isa_x86::encode_block(&is).expect("encodes");
        let back = pdbt_isa_x86::decode_block(&bytes).expect("decodes");
        prop_assert_eq!(back, is);
    }
}
