//! Randomized tests: host instructions survive the variable-length
//! binary encode/decode roundtrip, and arbitrary bytes never panic the
//! decoder.
//!
//! Originally written with `proptest`; the offline build environment has
//! no crates.io access, so the strategies are hand-rolled samplers over
//! the deterministic in-tree PRNG (`pdbt-rng`, aliased as `rand`).

use pdbt_isa_x86::{builders as h, decode, encode, Cc, Inst, Mem, Operand, Reg, Xmm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
}

fn reg(rng: &mut StdRng) -> Reg {
    Reg::from_index(rng.gen_range(0..8)).unwrap()
}

fn any_i32(rng: &mut StdRng) -> i32 {
    rng.gen_range(i32::MIN..=i32::MAX)
}

fn mem(rng: &mut StdRng) -> Mem {
    Mem {
        base: rng.gen_bool(0.5).then(|| reg(rng)),
        index: rng.gen_bool(0.5).then(|| reg(rng)),
        disp: any_i32(rng),
    }
}

fn rm(rng: &mut StdRng) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::Reg(reg(rng))
    } else {
        Operand::Mem(mem(rng))
    }
}

fn rmi(rng: &mut StdRng) -> Operand {
    match rng.gen_range(0..3) {
        0 => Operand::Reg(reg(rng)),
        1 => Operand::Mem(mem(rng)),
        _ => Operand::Imm(any_i32(rng)),
    }
}

fn cc(rng: &mut StdRng) -> Cc {
    Cc::ALL[rng.gen_range(0..14)]
}

fn inst(rng: &mut StdRng) -> Inst {
    match rng.gen_range(0..21) {
        0..=5 => {
            type B = fn(Operand, Operand) -> Inst;
            const OPS: [B; 15] = [
                h::mov,
                h::add,
                h::adc,
                h::sub,
                h::sbb,
                h::and,
                h::or,
                h::xor,
                h::imul,
                h::shl,
                h::shr,
                h::sar,
                h::ror,
                h::cmp,
                h::test,
            ];
            // mem-mem forms are illegal; resample the source.
            let dst = rm(rng);
            let src = loop {
                let s = rmi(rng);
                if !(matches!(dst, Operand::Mem(_)) && matches!(s, Operand::Mem(_))) {
                    break s;
                }
            };
            OPS[rng.gen_range(0..15)](dst, src)
        }
        6 => h::not(rm(rng)),
        7 => h::neg(rm(rng)),
        8 => h::mul_wide(rm(rng)),
        9 => h::push(rm(rng)),
        10 => h::pop(rm(rng)),
        11 => h::bsr(reg(rng).into(), rm(rng)),
        12 => h::lea(reg(rng).into(), mem(rng).into()),
        13 => h::movzxb(reg(rng).into(), mem(rng).into()),
        14 => h::movb(mem(rng).into(), reg(rng).into()),
        15 => h::jmp_rel(any_i32(rng)),
        16 => h::jmp_exit(rmi(rng)),
        17 => h::jcc(cc(rng), any_i32(rng)),
        18 => h::setcc(cc(rng), rm(rng)),
        19 => match rng.gen_range(0..3) {
            0 => h::ret(),
            1 => h::out(),
            _ => h::hlt(),
        },
        _ => match rng.gen_range(0..3) {
            0 => h::addss(
                Xmm::new(rng.gen_range(0u8..8)),
                Xmm::new(rng.gen_range(0u8..8)).into(),
            ),
            1 => h::movss(Xmm::new(rng.gen_range(0u8..8)).into(), mem(rng).into()),
            _ => h::ucomiss(
                Xmm::new(rng.gen_range(0u8..8)),
                Xmm::new(rng.gen_range(0u8..8)).into(),
            ),
        },
    }
}

#[test]
fn binary_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x86_01);
    for _ in 0..cases() {
        let i = inst(&mut rng);
        let bytes = encode(&i).expect("valid instructions encode");
        let (back, used) = decode(&bytes).expect("encoded bytes decode");
        assert_eq!(back, i);
        assert_eq!(used, bytes.len());
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x86_02);
    for _ in 0..cases() * 4 {
        let n = rng.gen_range(0..24);
        let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=u8::MAX)).collect();
        let _ = decode(&bytes);
    }
}

#[test]
fn block_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x86_03);
    for _ in 0..cases() / 4 {
        let n = rng.gen_range(0..12);
        let is: Vec<Inst> = (0..n).map(|_| inst(&mut rng)).collect();
        let bytes = pdbt_isa_x86::encode_block(&is).expect("encodes");
        let back = pdbt_isa_x86::decode_block(&bytes).expect("decodes");
        assert_eq!(back, is);
    }
}
