//! Host register file: eight 32-bit general-purpose registers and eight
//! scalar-float (XMM-like) registers.

use std::fmt;
use std::str::FromStr;

/// A host general-purpose register.
///
/// By the DBT's convention (see `pdbt-runtime`), `ebp` holds the guest
/// environment pointer (the in-memory guest register array) and `esp` the
/// host stack pointer; the remaining six are allocatable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Reg {
    Eax,
    Ecx,
    Edx,
    Ebx,
    Esp,
    Ebp,
    Esi,
    Edi,
}

impl Reg {
    /// All eight registers in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Encoding index (0–7).
    #[must_use]
    pub fn index(self) -> usize {
        Reg::ALL.iter().position(|r| *r == self).unwrap()
    }

    /// Register from index.
    #[must_use]
    pub fn from_index(i: usize) -> Option<Reg> {
        Reg::ALL.get(i).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
        };
        f.write_str(s)
    }
}

impl FromStr for Reg {
    type Err = String;

    fn from_str(s: &str) -> Result<Reg, String> {
        Reg::ALL
            .into_iter()
            .find(|r| r.to_string() == s)
            .ok_or_else(|| format!("bad host register `{s}`"))
    }
}

/// A host scalar-float register (`xmm0`–`xmm7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(u8);

impl Xmm {
    /// Creates `xmm<i>`; panics if `i >= 8`.
    #[must_use]
    pub fn new(i: u8) -> Xmm {
        assert!(i < 8, "xmm register index out of range: {i}");
        Xmm(i)
    }

    /// Encoding index (0–7).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(8), None);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Reg::Eax.to_string(), "eax");
        assert_eq!("edi".parse::<Reg>(), Ok(Reg::Edi));
        assert!("rax".parse::<Reg>().is_err());
    }

    #[test]
    fn xmm_basics() {
        assert_eq!(Xmm::new(3).index(), 3);
        assert_eq!(Xmm::new(0).to_string(), "xmm0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xmm_out_of_range() {
        let _ = Xmm::new(8);
    }
}
