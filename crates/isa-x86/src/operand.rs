//! Host operands: registers, immediates, memory with base+index+disp, and
//! the host condition codes with their guest-condition mapping.

use crate::reg::{Reg, Xmm};
use pdbt_isa::{AddrModeKind, Cond, Flags};
use std::fmt;

/// A host memory operand: `[base + index + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Mem {
    /// Optional base register.
    pub base: Option<Reg>,
    /// Optional index register.
    pub index: Option<Reg>,
    /// Signed displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base]`
    #[must_use]
    pub fn base(base: Reg) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    #[must_use]
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[base + index]`
    #[must_use]
    pub fn base_index(base: Reg, index: Reg) -> Mem {
        Mem {
            base: Some(base),
            index: Some(index),
            disp: 0,
        }
    }

    /// `[disp]` — absolute.
    #[must_use]
    pub fn abs(disp: i32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp,
        }
    }

    /// Registers the address computation reads.
    pub fn uses(self) -> impl Iterator<Item = Reg> {
        self.base.into_iter().chain(self.index)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some(i) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// A uniform host operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A 32-bit immediate.
    Imm(i32),
    /// A memory operand.
    Mem(Mem),
    /// A scalar-float register.
    Xmm(Xmm),
    /// A jump displacement in *instructions*, relative to the next
    /// instruction (the host model is instruction-indexed, not
    /// byte-indexed; the encoder handles the byte-level layout).
    Target(i32),
}

impl Operand {
    /// The addressing-mode kind (for host-side subgroup classification).
    #[must_use]
    pub fn addr_mode(&self) -> Option<AddrModeKind> {
        match self {
            Operand::Reg(_) | Operand::Xmm(_) => Some(AddrModeKind::Reg),
            Operand::Imm(_) => Some(AddrModeKind::Imm),
            Operand::Mem(_) => Some(AddrModeKind::Mem),
            Operand::Target(_) => None,
        }
    }

    /// Registers this operand reads when used as a *source*.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Operand::Reg(r) => vec![*r],
            Operand::Mem(m) => m.uses().collect(),
            _ => vec![],
        }
    }

    /// The register, if this is a plain register.
    #[must_use]
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The memory operand, if any.
    #[must_use]
    pub fn as_mem(&self) -> Option<Mem> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// The immediate, if any.
    #[must_use]
    pub fn as_imm(&self) -> Option<i32> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Xmm(x) => write!(f, "{x}"),
            Operand::Target(d) => {
                if *d >= 0 {
                    write!(f, ".+{d}")
                } else {
                    write!(f, ".{d}")
                }
            }
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

/// Host condition codes, evaluated against `EFLAGS` semantics
/// (`c` = CF with *borrow* polarity after subtraction, the opposite of
/// the guest's not-borrow convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cc {
    /// ZF set.
    E,
    /// ZF clear.
    Ne,
    /// CF set (unsigned below).
    B,
    /// CF clear (unsigned above-or-equal).
    Ae,
    /// CF clear and ZF clear (unsigned above).
    A,
    /// CF set or ZF set (unsigned below-or-equal).
    Be,
    /// SF set.
    S,
    /// SF clear.
    Ns,
    /// OF set.
    O,
    /// OF clear.
    No,
    /// SF == OF (signed greater-or-equal).
    Ge,
    /// SF != OF (signed less).
    L,
    /// ZF clear and SF == OF (signed greater).
    G,
    /// ZF set or SF != OF (signed less-or-equal).
    Le,
}

/// How the flag producer preceding a condition treats the carry flag,
/// which decides how guest conditions map onto host conditions.
///
/// After a guest `cmp a, b` (C = not-borrow) the host `cmp a, b`
/// (CF = borrow) holds the *inverted* carry, so `Cs` maps to `Ae`;
/// after a guest `adds` the carries agree, so `Cs` maps to `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarrySense {
    /// The producer was an addition: guest C and host CF agree.
    AddLike,
    /// The producer was a subtraction/compare: guest C = !host CF.
    SubLike,
}

impl Cc {
    /// All host condition codes.
    pub const ALL: [Cc; 14] = [
        Cc::E,
        Cc::Ne,
        Cc::B,
        Cc::Ae,
        Cc::A,
        Cc::Be,
        Cc::S,
        Cc::Ns,
        Cc::O,
        Cc::No,
        Cc::Ge,
        Cc::L,
        Cc::G,
        Cc::Le,
    ];

    /// Evaluates against host flags (`n`=SF, `z`=ZF, `c`=CF, `v`=OF).
    #[must_use]
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cc::E => f.z,
            Cc::Ne => !f.z,
            Cc::B => f.c,
            Cc::Ae => !f.c,
            Cc::A => !f.c && !f.z,
            Cc::Be => f.c || f.z,
            Cc::S => f.n,
            Cc::Ns => !f.n,
            Cc::O => f.v,
            Cc::No => !f.v,
            Cc::Ge => f.n == f.v,
            Cc::L => f.n != f.v,
            Cc::G => !f.z && f.n == f.v,
            Cc::Le => f.z || f.n != f.v,
        }
    }

    /// The logical negation.
    #[must_use]
    pub fn invert(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
            Cc::A => Cc::Be,
            Cc::Be => Cc::A,
            Cc::S => Cc::Ns,
            Cc::Ns => Cc::S,
            Cc::O => Cc::No,
            Cc::No => Cc::O,
            Cc::Ge => Cc::L,
            Cc::L => Cc::Ge,
            Cc::G => Cc::Le,
            Cc::Le => Cc::G,
        }
    }

    /// Maps a guest condition code to the host condition that evaluates
    /// identically, given the carry sense of the flag producer (this is
    /// the kernel of condition-flag *delegation*, paper §IV-D).
    ///
    /// Returns `None` for `Cond::Al` (no branch needed).
    #[must_use]
    pub fn from_guest(cond: Cond, sense: CarrySense) -> Option<Cc> {
        let same_carry = sense == CarrySense::AddLike;
        Some(match cond {
            Cond::Eq => Cc::E,
            Cond::Ne => Cc::Ne,
            Cond::Mi => Cc::S,
            Cond::Pl => Cc::Ns,
            Cond::Vs => Cc::O,
            Cond::Vc => Cc::No,
            Cond::Ge => Cc::Ge,
            Cond::Lt => Cc::L,
            Cond::Gt => Cc::G,
            Cond::Le => Cc::Le,
            // Carry-consulting conditions flip with the producer's sense.
            Cond::Cs => {
                if same_carry {
                    Cc::B
                } else {
                    Cc::Ae
                }
            }
            Cond::Cc => {
                if same_carry {
                    Cc::Ae
                } else {
                    Cc::B
                }
            }
            Cond::Hi => {
                if same_carry {
                    // guest C=1 && Z=0 with agreeing carry: CF=1 && ZF=0.
                    // No single x86 cc tests CF&&!ZF with that polarity;
                    // the translator materializes it, but for the model we
                    // expose the sub-like mapping only.
                    return None;
                } else {
                    Cc::A
                }
            }
            Cond::Ls => {
                if same_carry {
                    return None;
                } else {
                    Cc::Be
                }
            }
            Cond::Al => return None,
        })
    }

    /// Encoding index.
    #[must_use]
    pub fn index(self) -> u8 {
        Cc::ALL.iter().position(|c| *c == self).unwrap() as u8
    }

    /// Inverse of [`Cc::index`].
    #[must_use]
    pub fn from_index(i: u8) -> Option<Cc> {
        Cc::ALL.get(i as usize).copied()
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::B => "b",
            Cc::Ae => "ae",
            Cc::A => "a",
            Cc::Be => "be",
            Cc::S => "s",
            Cc::Ns => "ns",
            Cc::O => "o",
            Cc::No => "no",
            Cc::Ge => "ge",
            Cc::L => "l",
            Cc::G => "g",
            Cc::Le => "le",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_display() {
        assert_eq!(Mem::base(Reg::Eax).to_string(), "[eax]");
        assert_eq!(Mem::base_disp(Reg::Ebp, -8).to_string(), "[ebp-8]");
        assert_eq!(Mem::base_disp(Reg::Ebp, 8).to_string(), "[ebp+8]");
        assert_eq!(Mem::base_index(Reg::Eax, Reg::Ecx).to_string(), "[eax+ecx]");
        assert_eq!(Mem::abs(0x1000).to_string(), "[4096]");
    }

    #[test]
    fn cc_invert_negates() {
        for cc in Cc::ALL {
            assert_eq!(cc.invert().invert(), cc);
            for bits in 0..16u8 {
                let f = Flags {
                    n: bits & 1 != 0,
                    z: bits & 2 != 0,
                    c: bits & 4 != 0,
                    v: bits & 8 != 0,
                };
                assert_eq!(cc.eval(f), !cc.invert().eval(f));
            }
        }
    }

    #[test]
    fn guest_mapping_after_compare() {
        // Guest: cmp 5, 3 → C=1 (no borrow). Host: cmp 5, 3 → CF=0.
        // Guest `Cs` must hold ⟺ mapped host cc holds.
        let guest = Flags {
            n: false,
            z: false,
            c: true,
            v: false,
        };
        let host = Flags {
            n: false,
            z: false,
            c: false,
            v: false,
        };
        let mapped = Cc::from_guest(Cond::Cs, CarrySense::SubLike).unwrap();
        assert_eq!(Cond::Cs.eval(guest), mapped.eval(host));
        let mapped = Cc::from_guest(Cond::Hi, CarrySense::SubLike).unwrap();
        assert_eq!(Cond::Hi.eval(guest), mapped.eval(host));
    }

    #[test]
    fn guest_mapping_after_add() {
        // adds that carries out: guest C=1, host CF=1.
        let guest = Flags {
            n: false,
            z: true,
            c: true,
            v: false,
        };
        let host = guest;
        let mapped = Cc::from_guest(Cond::Cs, CarrySense::AddLike).unwrap();
        assert_eq!(Cond::Cs.eval(guest), mapped.eval(host));
        assert_eq!(Cc::from_guest(Cond::Hi, CarrySense::AddLike), None);
    }

    #[test]
    fn signed_conditions_map_directly() {
        for (cond, cc) in [
            (Cond::Eq, Cc::E),
            (Cond::Lt, Cc::L),
            (Cond::Gt, Cc::G),
            (Cond::Mi, Cc::S),
        ] {
            assert_eq!(Cc::from_guest(cond, CarrySense::SubLike), Some(cc));
        }
        assert_eq!(Cc::from_guest(Cond::Al, CarrySense::SubLike), None);
    }

    #[test]
    fn cc_index_roundtrip() {
        for cc in Cc::ALL {
            assert_eq!(Cc::from_index(cc.index()), Some(cc));
        }
        assert_eq!(Cc::from_index(14), None);
    }
}
