//! Pre-compiled threaded code: the host block executor behind
//! `--backend threaded`.
//!
//! [`compile_block`] lowers a block of [`Inst`]s **once** into a dense
//! array of [`TOp`]s — per-op fn pointers specialized (via const
//! generics) over the operand shapes the translator actually emits,
//! with register indices, immediates, displacements and condition
//! predicates pre-resolved. [`exec_threaded_into`] then runs the block
//! as a tight loop over those fn pointers: no `Inst` re-decode, no
//! operand `match`, no width dispatch on the hot path.
//!
//! The contract with the model interpreter (`crate::interp`) is
//! **bit-identity**: same architectural effects, same retire counts,
//! same errors (including error `detail` strings, pre-formatted at
//! compile time into a side table), same budget/`BadPc` ordering.
//! Operand shapes the translator never produces (e.g. mem→mem moves)
//! fall back to the model's own `step` through a side table of the
//! original instructions, so the equivalence holds for *every* input,
//! not just the common ones. The lockdown lives in the unit tests here
//! and in the cross-backend suites (`tests/backend.rs`).

use crate::inst::{Inst, Op};
use crate::interp::{self, BlockExit, Cpu, ExecStats, Step};
use crate::operand::{Cc, Mem, Operand};
use crate::reg::Reg;
use pdbt_isa::{ExecError, Flags, Width};

/// Operand-shape codes: the const-generic parameters the handlers are
/// specialized over. `C_REG` doubles as "xmm register" for the SSE
/// handlers (the index lives in the same `TOp` slot).
const C_REG: u8 = 0;
const C_IMM: u8 = 1;
/// `[disp]`
const C_ABS: u8 = 2;
/// `[base + disp]`
const C_MB: u8 = 3;
/// `[base + index + disp]`
const C_MBI: u8 = 4;
/// `[index + disp]`
const C_MI: u8 = 5;

/// ALU kinds for the `h_arith` family.
const A_ADD: u8 = 0;
const A_ADC: u8 = 1;
const A_SUB: u8 = 2;
const A_SBB: u8 = 3;
const A_CMP: u8 = 4;

/// Logic kinds for the `h_logic` family.
const L_AND: u8 = 0;
const L_OR: u8 = 1;
const L_XOR: u8 = 2;
const L_TEST: u8 = 3;

/// Shift kinds for the `h_shift` family.
const K_SHL: u8 = 0;
const K_SHR: u8 = 1;
const K_SAR: u8 = 2;
const K_ROR: u8 = 3;

/// Scalar-float kinds for the `h_ssebin` family.
const F_ADD: u8 = 0;
const F_SUB: u8 = 1;
const F_MUL: u8 = 2;
const F_DIV: u8 = 3;

/// One pre-compiled op: a handler plus its pre-resolved operands.
///
/// Field meaning depends on the handler the compiler bound: `a`/`b`
/// are destination/source register (or xmm) indices, `mb`/`mi`/`disp`
/// describe the (at most one) memory operand, `imm` holds an immediate
/// or a relative jump displacement, `cc` is the pre-bound condition
/// predicate, and `aux` indexes the side tables (`texts` / `slow`).
#[derive(Clone, Copy)]
pub struct TOp {
    exec: ExecFn,
    a: u8,
    b: u8,
    mb: u8,
    mi: u8,
    imm: u32,
    disp: u32,
    cc: fn(Flags) -> bool,
    aux: u16,
}

/// Handler result: boxing the (cold) error keeps the hot return at 16
/// bytes — a register-pair return instead of a stack-slot (`sret`)
/// write/read on every executed op.
type HRes = Result<Step, Box<ExecError>>;

type ExecFn = fn(&TOp, &ThreadedCode, &mut Cpu) -> HRes;

/// A block compiled to threaded code, plus its side tables:
/// pre-formatted error texts (so error details stay bit-identical to
/// the model without formatting on the hot path) and the original
/// instructions for shapes routed through the model fallback.
pub struct ThreadedCode {
    ops: Box<[TOp]>,
    texts: Box<[Box<str>]>,
    slow: Box<[Inst]>,
}

impl std::fmt::Debug for ThreadedCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedCode")
            .field("ops", &self.ops.len())
            .field("slow", &self.slow.len())
            .finish()
    }
}

impl ThreadedCode {
    /// Compiled ops (1:1 with the source instructions, so retire-count
    /// buffers index identically).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the block is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// How many ops took the model-fallback path (diagnostics only).
    #[must_use]
    pub fn slow_ops(&self) -> usize {
        self.slow.len()
    }
}

fn cc_never(_: Flags) -> bool {
    false
}

fn cc_fn(cc: Cc) -> fn(Flags) -> bool {
    match cc {
        Cc::E => |f: Flags| f.z,
        Cc::Ne => |f: Flags| !f.z,
        Cc::B => |f: Flags| f.c,
        Cc::Ae => |f: Flags| !f.c,
        Cc::A => |f: Flags| !f.c && !f.z,
        Cc::Be => |f: Flags| f.c || f.z,
        Cc::S => |f: Flags| f.n,
        Cc::Ns => |f: Flags| !f.n,
        Cc::O => |f: Flags| f.v,
        Cc::No => |f: Flags| !f.v,
        Cc::Ge => |f: Flags| f.n == f.v,
        Cc::L => |f: Flags| f.n != f.v,
        Cc::G => |f: Flags| !f.z && f.n == f.v,
        Cc::Le => |f: Flags| f.z || f.n != f.v,
    }
}

#[inline(always)]
fn width_of(w: u8) -> Width {
    match w {
        8 => Width::B8,
        16 => Width::B16,
        _ => Width::B32,
    }
}

/// Effective address of the op's memory operand, shape-specialized so
/// the absent-component branches compile out.
#[inline(always)]
fn maddr<const K: u8>(t: &TOp, cpu: &Cpu) -> u32 {
    let mut a = t.disp;
    if K == C_MB || K == C_MBI {
        a = a.wrapping_add(cpu.regs[t.mb as usize]);
    }
    if K == C_MI || K == C_MBI {
        a = a.wrapping_add(cpu.regs[t.mi as usize]);
    }
    a
}

/// 32-bit source read (register / immediate / memory).
#[inline(always)]
fn rd<const S: u8>(t: &TOp, cpu: &Cpu) -> Result<u32, Box<ExecError>> {
    match S {
        C_REG => Ok(cpu.regs[t.b as usize]),
        C_IMM => Ok(t.imm),
        _ => cpu
            .mem
            .load(maddr::<S>(t, cpu), Width::B32)
            .map_err(Box::new),
    }
}

/// 32-bit destination read (register / memory).
#[inline(always)]
fn rd_dst<const D: u8>(t: &TOp, cpu: &Cpu) -> Result<u32, Box<ExecError>> {
    if D == C_REG {
        Ok(cpu.regs[t.a as usize])
    } else {
        cpu.mem
            .load(maddr::<D>(t, cpu), Width::B32)
            .map_err(Box::new)
    }
}

/// 32-bit destination write (register / memory). Memory destinations
/// recompute the address at write time, exactly like the model's
/// `write_operand`.
#[inline(always)]
fn wr_dst<const D: u8>(t: &TOp, cpu: &mut Cpu, v: u32) -> Result<(), Box<ExecError>> {
    if D == C_REG {
        cpu.regs[t.a as usize] = v;
        Ok(())
    } else {
        cpu.mem
            .store(maddr::<D>(t, cpu), v, Width::B32)
            .map_err(Box::new)
    }
}

// --- handlers ---------------------------------------------------------

fn h_mov<const D: u8, const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let v = rd::<S>(t, cpu)?;
    wr_dst::<D>(t, cpu, v)?;
    Ok(Step::Next)
}

/// `MovB`/`MovW`: full-width source read, width-narrowed store. A
/// register destination still takes the full 32-bit write (the model's
/// `write_operand` ignores width for registers).
fn h_narrow<const W: u8, const D: u8, const S: u8>(
    t: &TOp,
    _c: &ThreadedCode,
    cpu: &mut Cpu,
) -> HRes {
    let v = rd::<S>(t, cpu)?;
    if D == C_REG {
        cpu.regs[t.a as usize] = v;
    } else {
        cpu.mem
            .store(maddr::<D>(t, cpu), v, width_of(W))
            .map_err(Box::new)?;
    }
    Ok(Step::Next)
}

/// `MovzxB`/`MovzxW`: width only narrows *memory* source loads — a
/// register source reads all 32 bits, exactly like the model.
fn h_movzx<const W: u8, const D: u8, const S: u8>(
    t: &TOp,
    _c: &ThreadedCode,
    cpu: &mut Cpu,
) -> HRes {
    let v = match S {
        C_REG => cpu.regs[t.b as usize],
        C_IMM => t.imm,
        _ => cpu
            .mem
            .load(maddr::<S>(t, cpu), width_of(W))
            .map_err(Box::new)?,
    };
    wr_dst::<D>(t, cpu, v)?;
    Ok(Step::Next)
}

fn h_lea<const M: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = maddr::<M>(t, cpu);
    cpu.regs[t.a as usize] = a;
    Ok(Step::Next)
}

fn h_arith<const K: u8, const D: u8, const S: u8>(
    t: &TOp,
    _c: &ThreadedCode,
    cpu: &mut Cpu,
) -> HRes {
    let a = rd_dst::<D>(t, cpu)?;
    let b = rd::<S>(t, cpu)?;
    let carry = cpu.flags.c;
    let (r, f) = match K {
        A_ADD => interp::add_with_carry(a, b, false),
        A_ADC => interp::add_with_carry(a, b, carry),
        A_SBB => interp::sub_with_borrow(a, b, carry),
        _ => interp::sub_with_borrow(a, b, false),
    };
    cpu.flags = f;
    if K != A_CMP {
        wr_dst::<D>(t, cpu, r)?;
    }
    Ok(Step::Next)
}

fn h_logic<const K: u8, const D: u8, const S: u8>(
    t: &TOp,
    _c: &ThreadedCode,
    cpu: &mut Cpu,
) -> HRes {
    let a = rd_dst::<D>(t, cpu)?;
    let b = rd::<S>(t, cpu)?;
    let r = match K {
        L_OR => a | b,
        L_XOR => a ^ b,
        _ => a & b,
    };
    cpu.flags = interp::logic_flags(r);
    if K != L_TEST {
        wr_dst::<D>(t, cpu, r)?;
    }
    Ok(Step::Next)
}

fn h_imul<const D: u8, const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = rd_dst::<D>(t, cpu)?;
    let b = rd::<S>(t, cpu)?;
    wr_dst::<D>(t, cpu, a.wrapping_mul(b))?;
    Ok(Step::Next)
}

fn h_mulwide<const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = cpu.regs[Reg::Eax.index()];
    let b = rd::<S>(t, cpu)?;
    let wide = u64::from(a) * u64::from(b);
    cpu.regs[Reg::Eax.index()] = wide as u32;
    cpu.regs[Reg::Edx.index()] = (wide >> 32) as u32;
    Ok(Step::Next)
}

fn h_shift<const K: u8, const D: u8, const S: u8>(
    t: &TOp,
    _c: &ThreadedCode,
    cpu: &mut Cpu,
) -> HRes {
    let a = rd_dst::<D>(t, cpu)?;
    let amt = (rd::<S>(t, cpu)? & 31) as u8;
    if amt == 0 {
        wr_dst::<D>(t, cpu, a)?;
    } else {
        let kind = match K {
            K_SHL => interp::ShiftOp::Lsl,
            K_SHR => interp::ShiftOp::Lsr,
            K_SAR => interp::ShiftOp::Asr,
            _ => interp::ShiftOp::Ror,
        };
        let (r, c) = interp::apply_shift(kind, a, amt);
        if K == K_ROR {
            cpu.flags.c = c;
        } else {
            let mut f = Flags {
                c,
                v: cpu.flags.v,
                ..Flags::default()
            };
            f.set_nz(r);
            cpu.flags = f;
        }
        wr_dst::<D>(t, cpu, r)?;
    }
    Ok(Step::Next)
}

fn h_not<const D: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = rd_dst::<D>(t, cpu)?;
    wr_dst::<D>(t, cpu, !a)?;
    Ok(Step::Next)
}

fn h_neg<const D: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = rd_dst::<D>(t, cpu)?;
    let (r, f) = interp::sub_with_borrow(0, a, false);
    cpu.flags = f;
    wr_dst::<D>(t, cpu, r)?;
    Ok(Step::Next)
}

fn h_bsr<const D: u8, const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let src = rd::<S>(t, cpu)?;
    if src == 0 {
        cpu.flags.z = true;
    } else {
        cpu.flags.z = false;
        wr_dst::<D>(t, cpu, 31 - src.leading_zeros())?;
    }
    Ok(Step::Next)
}

fn h_push<const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let v = rd::<S>(t, cpu)?;
    let sp = cpu.regs[Reg::Esp.index()].wrapping_sub(4);
    cpu.mem.store32(sp, v).map_err(Box::new)?;
    cpu.regs[Reg::Esp.index()] = sp;
    Ok(Step::Next)
}

/// `Esp` is bumped *before* the destination write, like the model, so
/// a memory destination addressing through `esp` sees the new value.
fn h_pop<const D: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let sp = cpu.regs[Reg::Esp.index()];
    let v = cpu.mem.load32(sp).map_err(Box::new)?;
    cpu.regs[Reg::Esp.index()] = sp.wrapping_add(4);
    wr_dst::<D>(t, cpu, v)?;
    Ok(Step::Next)
}

fn h_jmp_rel(t: &TOp, _c: &ThreadedCode, _cpu: &mut Cpu) -> HRes {
    Ok(Step::Rel(t.imm as i32))
}

fn h_jmp_exit<const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let v = rd::<S>(t, cpu)?;
    Ok(Step::Exit(BlockExit::Jumped(v)))
}

fn h_jcc(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    if (t.cc)(cpu.flags) {
        Ok(Step::Rel(t.imm as i32))
    } else {
        Ok(Step::Next)
    }
}

fn h_setcc<const D: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let v = u32::from((t.cc)(cpu.flags));
    wr_dst::<D>(t, cpu, v)?;
    Ok(Step::Next)
}

fn h_out(_t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let v = cpu.regs[Reg::Eax.index()];
    cpu.output.push(v);
    Ok(Step::Next)
}

fn h_hlt(_t: &TOp, _c: &ThreadedCode, _cpu: &mut Cpu) -> HRes {
    Ok(Step::Exit(BlockExit::Halted))
}

/// `call`/`ret`: always undefined inside a block; the detail string is
/// pre-formatted so it matches the model byte-for-byte.
fn h_undef(t: &TOp, c: &ThreadedCode, _cpu: &mut Cpu) -> HRes {
    Err(Box::new(ExecError::Undefined {
        detail: c.texts[t.aux as usize].to_string(),
    }))
}

fn h_movss_xx(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    cpu.xmm[t.a as usize] = cpu.xmm[t.b as usize];
    Ok(Step::Next)
}

/// `movss xmm, [mem]`: the model remaps *any* source-read error
/// (including memory faults) to `MalformedInstruction` carrying the
/// instruction's display text — reproduced from the side table.
fn h_movss_xm<const S: u8>(t: &TOp, c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let bits = cpu.mem.load32(maddr::<S>(t, cpu)).map_err(|_| {
        Box::new(ExecError::MalformedInstruction {
            detail: c.texts[t.aux as usize].to_string(),
        })
    })?;
    cpu.xmm[t.a as usize] = f32::from_bits(bits);
    Ok(Step::Next)
}

/// `movss [mem], xmm`: the store error propagates unmapped (the
/// model's remap covers only the source read).
fn h_movss_mx<const D: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let v = cpu.xmm[t.b as usize];
    cpu.mem
        .store32(maddr::<D>(t, cpu), v.to_bits())
        .map_err(Box::new)?;
    Ok(Step::Next)
}

#[inline(always)]
fn rd_f<const S: u8>(t: &TOp, cpu: &Cpu) -> Result<f32, Box<ExecError>> {
    if S == C_REG {
        Ok(cpu.xmm[t.b as usize])
    } else {
        match cpu.mem.load32(maddr::<S>(t, cpu)) {
            Ok(bits) => Ok(f32::from_bits(bits)),
            Err(e) => Err(Box::new(e)),
        }
    }
}

fn h_ssebin<const K: u8, const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = cpu.xmm[t.a as usize];
    let b = rd_f::<S>(t, cpu)?;
    let r = match K {
        F_ADD => a + b,
        F_SUB => a - b,
        F_MUL => a * b,
        _ => a / b,
    };
    cpu.xmm[t.a as usize] = r;
    Ok(Step::Next)
}

fn h_ucomiss<const S: u8>(t: &TOp, _c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    let a = cpu.xmm[t.a as usize];
    let b = rd_f::<S>(t, cpu)?;
    let unordered = a.is_nan() || b.is_nan();
    cpu.flags = Flags {
        z: unordered || a == b,
        c: unordered || a < b,
        n: false,
        v: false,
    };
    Ok(Step::Next)
}

/// Fallback: run the original instruction through the model's `step`.
/// Bit-identical by construction; only shapes the translator never
/// emits land here.
fn h_slow(t: &TOp, c: &ThreadedCode, cpu: &mut Cpu) -> HRes {
    interp::step(cpu, &c.slow[t.aux as usize]).map_err(Box::new)
}

// --- compiler ---------------------------------------------------------

/// Selects a `<.., D, S>` specialization for a (dst, src) shape pair.
/// Shapes outside the table (notably mem→mem, which would need two
/// memory operands in one `TOp`) return `None` → model fallback.
macro_rules! sel_ds {
    ($f:ident, [$($k:expr),*], $d:expr, $s:expr) => {
        match ($d, $s) {
            (C_REG, C_REG) => Some($f::<$({$k},)* C_REG, C_REG> as ExecFn),
            (C_REG, C_IMM) => Some($f::<$({$k},)* C_REG, C_IMM> as ExecFn),
            (C_REG, C_ABS) => Some($f::<$({$k},)* C_REG, C_ABS> as ExecFn),
            (C_REG, C_MB) => Some($f::<$({$k},)* C_REG, C_MB> as ExecFn),
            (C_REG, C_MBI) => Some($f::<$({$k},)* C_REG, C_MBI> as ExecFn),
            (C_REG, C_MI) => Some($f::<$({$k},)* C_REG, C_MI> as ExecFn),
            (C_ABS, C_REG) => Some($f::<$({$k},)* C_ABS, C_REG> as ExecFn),
            (C_ABS, C_IMM) => Some($f::<$({$k},)* C_ABS, C_IMM> as ExecFn),
            (C_MB, C_REG) => Some($f::<$({$k},)* C_MB, C_REG> as ExecFn),
            (C_MB, C_IMM) => Some($f::<$({$k},)* C_MB, C_IMM> as ExecFn),
            (C_MBI, C_REG) => Some($f::<$({$k},)* C_MBI, C_REG> as ExecFn),
            (C_MBI, C_IMM) => Some($f::<$({$k},)* C_MBI, C_IMM> as ExecFn),
            (C_MI, C_REG) => Some($f::<$({$k},)* C_MI, C_REG> as ExecFn),
            (C_MI, C_IMM) => Some($f::<$({$k},)* C_MI, C_IMM> as ExecFn),
            _ => None,
        }
    };
}

/// Selects a `<.., S>` specialization for a lone source shape.
macro_rules! sel_s {
    ($f:ident, [$($k:expr),*], $s:expr) => {
        match $s {
            C_REG => Some($f::<$({$k},)* C_REG> as ExecFn),
            C_IMM => Some($f::<$({$k},)* C_IMM> as ExecFn),
            C_ABS => Some($f::<$({$k},)* C_ABS> as ExecFn),
            C_MB => Some($f::<$({$k},)* C_MB> as ExecFn),
            C_MBI => Some($f::<$({$k},)* C_MBI> as ExecFn),
            C_MI => Some($f::<$({$k},)* C_MI> as ExecFn),
            _ => None,
        }
    };
}

/// Selects a `<.., D>` specialization for a lone destination shape
/// (no immediate destinations).
macro_rules! sel_d {
    ($f:ident, [$($k:expr),*], $d:expr) => {
        match $d {
            C_REG => Some($f::<$({$k},)* C_REG> as ExecFn),
            C_ABS => Some($f::<$({$k},)* C_ABS> as ExecFn),
            C_MB => Some($f::<$({$k},)* C_MB> as ExecFn),
            C_MBI => Some($f::<$({$k},)* C_MBI> as ExecFn),
            C_MI => Some($f::<$({$k},)* C_MI> as ExecFn),
            _ => None,
        }
    };
}

fn mem_shape(m: Mem) -> (u8, u8, u8) {
    match (m.base, m.index) {
        (Some(b), Some(i)) => (C_MBI, b.index() as u8, i.index() as u8),
        (Some(b), None) => (C_MB, b.index() as u8, 0),
        (None, Some(i)) => (C_MI, 0, i.index() as u8),
        (None, None) => (C_ABS, 0, 0),
    }
}

/// Binds an integer *destination* operand into `t`, returning its
/// shape code; `None` for operands that can't be an integer dst, or a
/// second memory operand (`mem_used`).
fn bind_dst(t: &mut TOp, o: &Operand, mem_used: &mut bool) -> Option<u8> {
    match o {
        Operand::Reg(r) => {
            t.a = r.index() as u8;
            Some(C_REG)
        }
        Operand::Mem(m) => {
            if *mem_used {
                return None;
            }
            *mem_used = true;
            let (code, mb, mi) = mem_shape(*m);
            t.mb = mb;
            t.mi = mi;
            t.disp = m.disp as u32;
            Some(code)
        }
        _ => None,
    }
}

/// Binds an integer *source* operand into `t` (register, immediate,
/// or the single memory operand).
fn bind_src(t: &mut TOp, o: &Operand, mem_used: &mut bool) -> Option<u8> {
    match o {
        Operand::Reg(r) => {
            t.b = r.index() as u8;
            Some(C_REG)
        }
        Operand::Imm(v) => {
            t.imm = *v as u32;
            Some(C_IMM)
        }
        Operand::Mem(m) => {
            if *mem_used {
                return None;
            }
            *mem_used = true;
            let (code, mb, mi) = mem_shape(*m);
            t.mb = mb;
            t.mi = mi;
            t.disp = m.disp as u32;
            Some(code)
        }
        _ => None,
    }
}

/// Tries to compile one instruction to a specialized handler, filling
/// `t`'s operand fields. `None` routes the instruction to `h_slow`.
#[allow(clippy::too_many_lines)]
fn fast_op(inst: &Inst, t: &mut TOp, texts: &mut Vec<Box<str>>) -> Option<ExecFn> {
    use Op::*;
    let ops = &inst.operands;
    let mut mem = false;
    match inst.op {
        Mov => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_mov, [], d, s)
        }
        MovB => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_narrow, [8], d, s)
        }
        MovW => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_narrow, [16], d, s)
        }
        MovzxB => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_movzx, [8], d, s)
        }
        MovzxW => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_movzx, [16], d, s)
        }
        Lea => {
            // Destination must be a register: the memory fields carry
            // the *source* address expression.
            let Operand::Reg(r) = ops.first()? else {
                return None;
            };
            t.a = r.index() as u8;
            let m = ops.get(1)?.as_mem()?;
            let (code, mb, mi) = mem_shape(m);
            t.mb = mb;
            t.mi = mi;
            t.disp = m.disp as u32;
            match code {
                C_ABS => Some(h_lea::<C_ABS> as ExecFn),
                C_MB => Some(h_lea::<C_MB> as ExecFn),
                C_MBI => Some(h_lea::<C_MBI> as ExecFn),
                _ => Some(h_lea::<C_MI> as ExecFn),
            }
        }
        Add | Adc | Sub | Sbb | Cmp => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            match inst.op {
                Add => sel_ds!(h_arith, [A_ADD], d, s),
                Adc => sel_ds!(h_arith, [A_ADC], d, s),
                Sub => sel_ds!(h_arith, [A_SUB], d, s),
                Sbb => sel_ds!(h_arith, [A_SBB], d, s),
                _ => sel_ds!(h_arith, [A_CMP], d, s),
            }
        }
        And | Or | Xor | Test => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            match inst.op {
                And => sel_ds!(h_logic, [L_AND], d, s),
                Or => sel_ds!(h_logic, [L_OR], d, s),
                Xor => sel_ds!(h_logic, [L_XOR], d, s),
                _ => sel_ds!(h_logic, [L_TEST], d, s),
            }
        }
        Imul => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_imul, [], d, s)
        }
        MulWide => {
            let s = bind_src(t, ops.first()?, &mut mem)?;
            sel_s!(h_mulwide, [], s)
        }
        Shl | Shr | Sar | Ror => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            match inst.op {
                Shl => sel_ds!(h_shift, [K_SHL], d, s),
                Shr => sel_ds!(h_shift, [K_SHR], d, s),
                Sar => sel_ds!(h_shift, [K_SAR], d, s),
                _ => sel_ds!(h_shift, [K_ROR], d, s),
            }
        }
        Not => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            sel_d!(h_not, [], d)
        }
        Neg => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            sel_d!(h_neg, [], d)
        }
        Bsr => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            let s = bind_src(t, ops.get(1)?, &mut mem)?;
            sel_ds!(h_bsr, [], d, s)
        }
        Push => {
            let s = bind_src(t, ops.first()?, &mut mem)?;
            sel_s!(h_push, [], s)
        }
        Pop => {
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            sel_d!(h_pop, [], d)
        }
        Jmp => match ops.first()? {
            Operand::Target(d) => {
                t.imm = *d as u32;
                Some(h_jmp_rel as ExecFn)
            }
            o => {
                let s = bind_src(t, o, &mut mem)?;
                sel_s!(h_jmp_exit, [], s)
            }
        },
        Jcc => {
            let Operand::Target(d) = ops.first()? else {
                return None;
            };
            t.imm = *d as u32;
            t.cc = cc_fn(inst.cc?);
            Some(h_jcc as ExecFn)
        }
        Setcc => {
            t.cc = cc_fn(inst.cc?);
            let d = bind_dst(t, ops.first()?, &mut mem)?;
            sel_d!(h_setcc, [], d)
        }
        Out => Some(h_out as ExecFn),
        Hlt => Some(h_hlt as ExecFn),
        Call | Ret => {
            t.aux = u16::try_from(texts.len()).ok()?;
            texts.push(format!("{} inside a translation block", inst.op).into_boxed_str());
            Some(h_undef as ExecFn)
        }
        Movss => match (ops.first()?, ops.get(1)?) {
            (Operand::Xmm(x), Operand::Xmm(y)) => {
                t.a = x.index() as u8;
                t.b = y.index() as u8;
                Some(h_movss_xx as ExecFn)
            }
            (Operand::Xmm(x), Operand::Mem(m)) => {
                t.a = x.index() as u8;
                let (code, mb, mi) = mem_shape(*m);
                t.mb = mb;
                t.mi = mi;
                t.disp = m.disp as u32;
                t.aux = u16::try_from(texts.len()).ok()?;
                texts.push(format!("{inst}").into_boxed_str());
                match code {
                    C_ABS => Some(h_movss_xm::<C_ABS> as ExecFn),
                    C_MB => Some(h_movss_xm::<C_MB> as ExecFn),
                    C_MBI => Some(h_movss_xm::<C_MBI> as ExecFn),
                    _ => Some(h_movss_xm::<C_MI> as ExecFn),
                }
            }
            (Operand::Mem(m), Operand::Xmm(y)) => {
                t.b = y.index() as u8;
                let (code, mb, mi) = mem_shape(*m);
                t.mb = mb;
                t.mi = mi;
                t.disp = m.disp as u32;
                match code {
                    C_ABS => Some(h_movss_mx::<C_ABS> as ExecFn),
                    C_MB => Some(h_movss_mx::<C_MB> as ExecFn),
                    C_MBI => Some(h_movss_mx::<C_MBI> as ExecFn),
                    _ => Some(h_movss_mx::<C_MI> as ExecFn),
                }
            }
            _ => None,
        },
        Addss | Subss | Mulss | Divss | Ucomiss => {
            let Operand::Xmm(x) = ops.first()? else {
                return None;
            };
            t.a = x.index() as u8;
            let s = match ops.get(1)? {
                Operand::Xmm(y) => {
                    t.b = y.index() as u8;
                    C_REG
                }
                Operand::Mem(m) => {
                    let (code, mb, mi) = mem_shape(*m);
                    t.mb = mb;
                    t.mi = mi;
                    t.disp = m.disp as u32;
                    code
                }
                _ => return None,
            };
            match inst.op {
                Addss => sel_s!(h_ssebin, [F_ADD], s),
                Subss => sel_s!(h_ssebin, [F_SUB], s),
                Mulss => sel_s!(h_ssebin, [F_MUL], s),
                Divss => sel_s!(h_ssebin, [F_DIV], s),
                _ => sel_s!(h_ucomiss, [], s),
            }
        }
    }
}

/// Compiles a block of host instructions into threaded code. Pure and
/// deterministic: the result depends only on the instructions.
#[must_use]
pub fn compile_block(insts: &[Inst]) -> ThreadedCode {
    let mut ops = Vec::with_capacity(insts.len());
    let mut texts: Vec<Box<str>> = Vec::new();
    let mut slow: Vec<Inst> = Vec::new();
    for inst in insts {
        let mut t = TOp {
            exec: h_hlt,
            a: 0,
            b: 0,
            mb: 0,
            mi: 0,
            imm: 0,
            disp: 0,
            cc: cc_never,
            aux: 0,
        };
        t.exec = match fast_op(inst, &mut t, &mut texts) {
            Some(f) => f,
            None => {
                t.aux = u16::try_from(slow.len()).unwrap_or(0);
                if usize::from(t.aux) != slow.len() {
                    // Side table overflow (>65535 odd ops in one block
                    // cannot happen with max_block=32; belt and braces).
                    slow.truncate(0);
                    t.aux = 0;
                }
                slow.push(inst.clone());
                h_slow
            }
        };
        ops.push(t);
    }
    ThreadedCode {
        ops: ops.into_boxed_slice(),
        texts: texts.into_boxed_slice(),
        slow: slow.into_boxed_slice(),
    }
}

/// Executes compiled threaded code on `cpu`, writing per-op retire
/// counts into `counts` (cleared and resized to the op count).
///
/// Mirrors `exec_block_traced_into` exactly: budget is checked before
/// each retire, relative jumps are bounds-checked against the op
/// count, and falling off the end is [`BlockExit::Fell`].
///
/// # Errors
///
/// Identical to [`crate::exec_block`]: any interpreter error,
/// [`ExecError::Timeout`] past `budget`, [`ExecError::BadPc`] on a
/// wild relative jump.
pub fn exec_threaded_into(
    cpu: &mut Cpu,
    code: &ThreadedCode,
    budget: u64,
    counts: &mut Vec<u32>,
) -> Result<(BlockExit, ExecStats), ExecError> {
    let ops = &code.ops;
    counts.clear();
    counts.resize(ops.len(), 0);
    let mut ip: usize = 0;
    let mut stats = ExecStats::default();
    while ip < ops.len() {
        if stats.executed >= budget {
            return Err(ExecError::Timeout { budget });
        }
        let t = &ops[ip];
        stats.executed += 1;
        counts[ip] += 1;
        match (t.exec)(t, code, cpu).map_err(|e| *e)? {
            Step::Next => ip += 1,
            Step::Rel(d) => {
                let next = ip as i64 + 1 + i64::from(d);
                if next < 0 || next as usize > ops.len() {
                    return Err(ExecError::BadPc { pc: next as u32 });
                }
                ip = next as usize;
            }
            Step::Exit(e) => return Ok((e, stats)),
        }
    }
    Ok((BlockExit::Fell, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::interp::exec_block_traced_into;
    use crate::reg::Xmm;

    fn cpu() -> Cpu {
        let mut c = Cpu::new();
        c.mem.map(0x1_0000, 0x1000);
        c.mem.map(0x8_0000, 0x1000);
        c.write(Reg::Esp, 0x8_1000);
        c
    }

    /// Runs a block through both executors from identical initial
    /// state and asserts bit-identical results: outcome, stats, retire
    /// counts, registers, flags, xmm bits, output, and error equality.
    fn check(insts: &[Inst], setup: impl Fn(&mut Cpu)) {
        let mut model = cpu();
        let mut fast = cpu();
        setup(&mut model);
        setup(&mut fast);
        let code = compile_block(insts);
        assert_eq!(code.len(), insts.len());
        let mut mc = Vec::new();
        let mut fc = Vec::new();
        let mr = exec_block_traced_into(&mut model, insts, 10_000, &mut mc);
        let fr = exec_threaded_into(&mut fast, &code, 10_000, &mut fc);
        match (&mr, &fr) {
            (Ok((me, ms)), Ok((fe, fs))) => {
                assert_eq!(me, fe, "exit for {insts:?}");
                assert_eq!(ms, fs, "stats for {insts:?}");
            }
            (Err(m), Err(f)) => assert_eq!(format!("{m:?}"), format!("{f:?}"), "error"),
            _ => panic!("outcome mismatch: model={mr:?} threaded={fr:?} for {insts:?}"),
        }
        assert_eq!(mc, fc, "retire counts for {insts:?}");
        assert_eq!(model.regs, fast.regs, "regs for {insts:?}");
        assert_eq!(model.flags, fast.flags, "flags for {insts:?}");
        assert_eq!(
            model.xmm.map(f32::to_bits),
            fast.xmm.map(f32::to_bits),
            "xmm for {insts:?}"
        );
        assert_eq!(model.output, fast.output, "output for {insts:?}");
    }

    #[test]
    fn alu_and_flags_match_model() {
        check(
            &[
                mov(Reg::Eax.into(), Operand::Imm(-1)),
                add(Reg::Eax.into(), Operand::Imm(1)),
                mov(Reg::Ecx.into(), Operand::Imm(0)),
                adc(Reg::Ecx.into(), Operand::Imm(0)),
                sub(Reg::Ecx.into(), Operand::Imm(5)),
                sbb(Reg::Edx.into(), Reg::Ecx.into()),
                cmp(Reg::Edx.into(), Operand::Imm(7)),
                setcc(Cc::L, Reg::Ebx.into()),
            ],
            |_| {},
        );
    }

    #[test]
    fn logic_shift_bits_match_model() {
        check(
            &[
                mov(Reg::Eax.into(), Operand::Imm(0x0f0f_0f0f)),
                and(Reg::Eax.into(), Operand::Imm(0x00ff_00ff)),
                or(Reg::Eax.into(), Operand::Imm(0x1000_0000)),
                xor(Reg::Eax.into(), Reg::Eax.into()),
                test(Reg::Eax.into(), Reg::Eax.into()),
                mov(Reg::Ecx.into(), Operand::Imm(3)),
                shl(Reg::Ecx.into(), Operand::Imm(30)),
                shr(Reg::Ecx.into(), Operand::Imm(1)),
                sar(Reg::Ecx.into(), Operand::Imm(2)),
                ror(Reg::Ecx.into(), Operand::Imm(4)),
                // Zero shift amounts: no flag change, dst rewritten.
                shl(Reg::Ecx.into(), Operand::Imm(0)),
                not(Reg::Ecx.into()),
                neg(Reg::Ecx.into()),
                bsr(Reg::Edx.into(), Reg::Ecx.into()),
            ],
            |_| {},
        );
    }

    #[test]
    fn memory_shapes_match_model() {
        check(
            &[
                mov(Mem::base_disp(Reg::Ebp, 8).into(), Operand::Imm(0x1234)),
                mov(Reg::Eax.into(), Mem::base_disp(Reg::Ebp, 8).into()),
                add(Mem::base_disp(Reg::Ebp, 8).into(), Operand::Imm(1)),
                mov(
                    Reg::Ecx.into(),
                    Mem {
                        base: Some(Reg::Ebp),
                        index: Some(Reg::Edi),
                        disp: 8,
                    }
                    .into(),
                ),
                movb(Mem::base(Reg::Ebp).into(), Reg::Eax.into()),
                movzxb(Reg::Edx.into(), Mem::base(Reg::Ebp).into()),
                movzxw(Reg::Esi.into(), Mem::base(Reg::Ebp).into()),
                lea(
                    Reg::Ebx.into(),
                    Mem {
                        base: Some(Reg::Ebp),
                        index: Some(Reg::Edi),
                        disp: 3,
                    }
                    .into(),
                ),
                push(Operand::Imm(11)),
                pop(Reg::Eax.into()),
            ],
            |c| c.write(Reg::Ebp, 0x1_0000),
        );
    }

    #[test]
    fn control_flow_matches_model() {
        check(
            &[
                mov(Reg::Eax.into(), Operand::Imm(3)),
                mov(Reg::Ecx.into(), Operand::Imm(0)),
                add(Reg::Ecx.into(), Reg::Eax.into()),
                sub(Reg::Eax.into(), Operand::Imm(1)),
                jcc(Cc::Ne, -3),
                out(),
                hlt(),
            ],
            |_| {},
        );
        check(
            &[
                mov(Reg::Eax.into(), Operand::Imm(0x40)),
                jmp_exit(Reg::Eax.into()),
            ],
            |_| {},
        );
        check(
            &[jmp_rel(1), hlt(), mov(Reg::Eax.into(), Operand::Imm(1))],
            |_| {},
        );
        check(&[mov(Reg::Eax.into(), Operand::Imm(1))], |_| {}); // Fell
    }

    #[test]
    fn errors_match_model() {
        // Wild relative jump → BadPc.
        check(&[jmp_rel(100)], |_| {});
        // Unmapped store fault.
        check(&[mov(Mem::base(Reg::Ecx).into(), Operand::Imm(1))], |_| {});
        // call/ret undefined, with identical detail text.
        check(&[ret()], |_| {});
        check(&[call(Operand::Imm(4))], |_| {});
        // movss from unmapped memory: remapped error text.
        check(
            &[movss(Xmm::new(0).into(), Mem::base(Reg::Ecx).into())],
            |_| {},
        );
    }

    #[test]
    fn float_bits_match_model() {
        check(
            &[
                movss(Xmm::new(0).into(), Xmm::new(1).into()),
                addss(Xmm::new(0), Xmm::new(2).into()),
                subss(Xmm::new(0), Xmm::new(1).into()),
                mulss(Xmm::new(0), Xmm::new(2).into()),
                divss(Xmm::new(0), Xmm::new(1).into()),
                ucomiss(Xmm::new(1), Xmm::new(2).into()),
                movss(Mem::base(Reg::Ebp).into(), Xmm::new(0).into()),
                movss(Xmm::new(3).into(), Mem::base(Reg::Ebp).into()),
            ],
            |c| {
                c.write(Reg::Ebp, 0x1_0000);
                c.write_x(Xmm::new(1), 2.5);
                c.write_x(Xmm::new(2), -8.25);
            },
        );
        // NaN comparison: unordered flags.
        check(&[ucomiss(Xmm::new(0), Xmm::new(1).into())], |c| {
            c.write_x(Xmm::new(0), f32::NAN);
        });
    }

    #[test]
    fn mulwide_and_budget_match_model() {
        check(
            &[
                mov(Reg::Eax.into(), Operand::Imm(-1)),
                mov(Reg::Ecx.into(), Operand::Imm(16)),
                mul_wide(Reg::Ecx.into()),
                imul(Reg::Ecx.into(), Reg::Edx.into()),
            ],
            |_| {},
        );
        // Timeout parity: both exhaust the same budget.
        let spin = [jmp_rel(-1)];
        let code = compile_block(&spin);
        let mut c1 = cpu();
        let mut c2 = cpu();
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        let m = exec_block_traced_into(&mut c1, &spin, 5, &mut b1);
        let f = exec_threaded_into(&mut c2, &code, 5, &mut b2);
        assert_eq!(format!("{m:?}"), format!("{f:?}"));
        assert_eq!(b1, b2);
    }
}
