//! Variable-length binary encoding for the host ISA.
//!
//! Host instructions encode to 1–11 bytes: an opcode byte, an optional
//! condition byte, and per-operand descriptors. The variable length is
//! deliberate — it models the CISC side of the "same encoding format"
//! classification guideline (paper §IV-A), where host subgroup membership
//! follows the format class rather than a fixed width.

use crate::inst::{Inst, Op, Shape};
use crate::operand::{Cc, Mem, Operand};
use crate::reg::{Reg, Xmm};
use std::fmt;

/// An error raised while encoding a host instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host encode error: {}", self.detail)
    }
}

impl std::error::Error for EncodeError {}

/// An error raised while decoding host bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host decode error: {}", self.detail)
    }
}

impl std::error::Error for DecodeError {}

// Operand descriptor tags.
const TAG_REG: u8 = 0;
const TAG_IMM: u8 = 1;
const TAG_MEM: u8 = 2;
const TAG_XMM: u8 = 3;
const TAG_TARGET: u8 = 4;

fn push_operand(out: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            out.push(TAG_REG);
            out.push(r.index() as u8);
        }
        Operand::Imm(v) => {
            out.push(TAG_IMM);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Operand::Mem(m) => {
            out.push(TAG_MEM);
            // Flags byte: bit0 = has base, bit1 = has index.
            let mut fl = 0u8;
            if m.base.is_some() {
                fl |= 1;
            }
            if m.index.is_some() {
                fl |= 2;
            }
            out.push(fl);
            if let Some(b) = m.base {
                out.push(b.index() as u8);
            }
            if let Some(i) = m.index {
                out.push(i.index() as u8);
            }
            out.extend_from_slice(&m.disp.to_le_bytes());
        }
        Operand::Xmm(x) => {
            out.push(TAG_XMM);
            out.push(x.index() as u8);
        }
        Operand::Target(d) => {
            out.push(TAG_TARGET);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn take(bytes: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u8>, DecodeError> {
    if *pos + n > bytes.len() {
        return Err(DecodeError {
            detail: "truncated instruction".into(),
        });
    }
    let v = bytes[*pos..*pos + n].to_vec();
    *pos += n;
    Ok(v)
}

fn read_i32(bytes: &[u8], pos: &mut usize) -> Result<i32, DecodeError> {
    let b = take(bytes, pos, 4)?;
    Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn pull_operand(bytes: &[u8], pos: &mut usize) -> Result<Operand, DecodeError> {
    let tag = take(bytes, pos, 1)?[0];
    match tag {
        TAG_REG => {
            let i = take(bytes, pos, 1)?[0];
            Reg::from_index(i as usize)
                .map(Operand::Reg)
                .ok_or_else(|| DecodeError {
                    detail: format!("register {i}"),
                })
        }
        TAG_IMM => Ok(Operand::Imm(read_i32(bytes, pos)?)),
        TAG_MEM => {
            let fl = take(bytes, pos, 1)?[0];
            let base = if fl & 1 != 0 {
                let i = take(bytes, pos, 1)?[0];
                Some(Reg::from_index(i as usize).ok_or_else(|| DecodeError {
                    detail: format!("base register {i}"),
                })?)
            } else {
                None
            };
            let index = if fl & 2 != 0 {
                let i = take(bytes, pos, 1)?[0];
                Some(Reg::from_index(i as usize).ok_or_else(|| DecodeError {
                    detail: format!("index register {i}"),
                })?)
            } else {
                None
            };
            let disp = read_i32(bytes, pos)?;
            Ok(Operand::Mem(Mem { base, index, disp }))
        }
        TAG_XMM => {
            let i = take(bytes, pos, 1)?[0];
            if i < 8 {
                Ok(Operand::Xmm(Xmm::new(i)))
            } else {
                Err(DecodeError {
                    detail: format!("xmm register {i}"),
                })
            }
        }
        TAG_TARGET => Ok(Operand::Target(read_i32(bytes, pos)?)),
        other => Err(DecodeError {
            detail: format!("operand tag {other}"),
        }),
    }
}

/// Encodes one host instruction to bytes.
///
/// # Errors
///
/// [`EncodeError`] if the instruction fails validation.
pub fn encode(inst: &Inst) -> Result<Vec<u8>, EncodeError> {
    inst.validate().map_err(|e| EncodeError {
        detail: e.to_string(),
    })?;
    let mut out = vec![inst.op.index()];
    if matches!(inst.op.shape(), Shape::CondBranch | Shape::SetCc) {
        out.push(inst.cc.expect("validated").index());
    }
    for o in &inst.operands {
        push_operand(&mut out, o);
    }
    Ok(out)
}

/// Decodes one host instruction from the front of `bytes`, returning the
/// instruction and the number of bytes consumed.
///
/// # Errors
///
/// [`DecodeError`] on truncation or invalid fields.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let mut pos = 0usize;
    let raw_op = take(bytes, &mut pos, 1)?[0];
    let op = Op::from_index(raw_op).ok_or_else(|| DecodeError {
        detail: format!("opcode {raw_op}"),
    })?;
    let cc = if matches!(op.shape(), Shape::CondBranch | Shape::SetCc) {
        let raw = take(bytes, &mut pos, 1)?[0];
        Some(Cc::from_index(raw).ok_or_else(|| DecodeError {
            detail: format!("cc {raw}"),
        })?)
    } else {
        None
    };
    let n_operands = match op.shape() {
        Shape::Nullary => 0,
        Shape::Unary | Shape::Branch | Shape::CondBranch | Shape::SetCc => 1,
        _ => 2,
    };
    let mut operands = Vec::with_capacity(n_operands);
    for _ in 0..n_operands {
        operands.push(pull_operand(bytes, &mut pos)?);
    }
    let inst = Inst { op, cc, operands };
    inst.validate().map_err(|e| DecodeError {
        detail: e.to_string(),
    })?;
    Ok((inst, pos))
}

/// Encodes a sequence of instructions into one byte stream.
///
/// # Errors
///
/// The first [`EncodeError`] encountered.
pub fn encode_block(insts: &[Inst]) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::new();
    for i in insts {
        out.extend(encode(i)?);
    }
    Ok(out)
}

/// Decodes an entire byte stream back into instructions.
///
/// # Errors
///
/// The first [`DecodeError`] encountered.
pub fn decode_block(mut bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (inst, used) = decode(bytes)?;
        out.push(inst);
        bytes = &bytes[used..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;

    #[test]
    fn roundtrip_representative() {
        let cases = vec![
            mov(Reg::Eax.into(), Operand::Imm(-7)),
            mov(Mem::base_disp(Reg::Ebp, 16).into(), Reg::Ecx.into()),
            add(
                Reg::Eax.into(),
                Mem {
                    base: Some(Reg::Ebx),
                    index: Some(Reg::Ecx),
                    disp: -4,
                }
                .into(),
            ),
            not(Reg::Edx.into()),
            mul_wide(Reg::Esi.into()),
            bsr(Reg::Eax.into(), Reg::Edi.into()),
            cmp(Reg::Eax.into(), Operand::Imm(1000)),
            push(Operand::Imm(3)),
            pop(Reg::Eax.into()),
            jmp_rel(-5),
            jmp_exit(Operand::Imm(0x1234)),
            jcc(Cc::Le, 7),
            setcc(Cc::A, Reg::Ecx.into()),
            out(),
            hlt(),
            movss(Xmm::new(3).into(), Mem::base(Reg::Eax).into()),
            addss(Xmm::new(0), Xmm::new(7).into()),
            ucomiss(Xmm::new(1), Mem::abs(0x100).into()),
            movzxb(Reg::Eax.into(), Mem::base(Reg::Esi).into()),
            movb(Mem::base(Reg::Edi).into(), Reg::Eax.into()),
            lea(Reg::Eax.into(), Mem::base_index(Reg::Ebx, Reg::Ecx).into()),
        ];
        for inst in &cases {
            let bytes = encode(inst).unwrap_or_else(|e| panic!("encode {inst}: {e}"));
            let (back, used) = decode(&bytes).unwrap_or_else(|e| panic!("decode {inst}: {e}"));
            assert_eq!(&back, inst, "roundtrip of {inst}");
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn variable_length_is_real() {
        let short = encode(&hlt()).unwrap();
        let long = encode(&add(
            Reg::Eax.into(),
            Mem {
                base: Some(Reg::Ebx),
                index: Some(Reg::Ecx),
                disp: 1,
            }
            .into(),
        ))
        .unwrap();
        assert_eq!(short.len(), 1);
        assert!(
            long.len() > 6,
            "mem operand encodings are long: {}",
            long.len()
        );
    }

    #[test]
    fn block_roundtrip() {
        let block = vec![
            mov(Reg::Eax.into(), Operand::Imm(1)),
            add(Reg::Eax.into(), Operand::Imm(2)),
            hlt(),
        ];
        let bytes = encode_block(&block).unwrap();
        assert_eq!(decode_block(&bytes).unwrap(), block);
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode(&mov(Reg::Eax.into(), Operand::Imm(77))).unwrap();
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn bad_opcode_detected() {
        assert!(decode(&[200]).is_err());
    }
}
