//! Host CPU state and block executor.
//!
//! Translated code runs as straight-line blocks with instruction-relative
//! internal jumps. A block finishes by executing `hlt` (guest exit),
//! or `jmp <r/m/imm>` whose operand value is the *next guest PC* — the
//! same exit convention QEMU's translation blocks use to return control
//! to the dispatcher.

use crate::inst::{Inst, Op};
use crate::operand::{Mem, Operand};
use crate::reg::{Reg, Xmm};
use pdbt_isa::{Addr, ExecError, Flags, Memory, Width};

/// The architectural state of the host CPU.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: [u32; 8],
    /// Scalar-float registers.
    pub xmm: [f32; 8],
    /// `EFLAGS` (`n`=SF, `z`=ZF, `c`=CF, `v`=OF).
    pub flags: Flags,
    /// Host memory (in the DBT, guest memory is identity-mapped here and
    /// the guest register array lives at the environment base).
    pub mem: Memory,
    /// Values emitted by `out`.
    pub output: Vec<u32>,
}

impl Cpu {
    /// Creates a CPU with zeroed registers and empty memory.
    #[must_use]
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Reads a register.
    #[must_use]
    pub fn read(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn write(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }

    /// Reads a float register.
    #[must_use]
    pub fn read_x(&self, x: Xmm) -> f32 {
        self.xmm[x.index()]
    }

    /// Writes a float register.
    pub fn write_x(&mut self, x: Xmm, v: f32) {
        self.xmm[x.index()] = v;
    }
}

/// How a block finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Execution fell off the end of the block.
    Fell,
    /// `jmp <operand>`: continue at this guest PC.
    Jumped(Addr),
    /// `hlt`: the guest program exited.
    Halted,
}

fn mem_addr(cpu: &Cpu, m: Mem) -> Addr {
    let mut a = m.disp as u32;
    if let Some(b) = m.base {
        a = a.wrapping_add(cpu.read(b));
    }
    if let Some(i) = m.index {
        a = a.wrapping_add(cpu.read(i));
    }
    a
}

fn read_operand(cpu: &Cpu, o: &Operand, width: Width) -> Result<u32, ExecError> {
    match o {
        Operand::Reg(r) => Ok(cpu.read(*r)),
        Operand::Imm(v) => Ok(*v as u32),
        Operand::Mem(m) => cpu.mem.load(mem_addr(cpu, *m), width),
        Operand::Xmm(_) | Operand::Target(_) => Err(ExecError::MalformedInstruction {
            detail: format!("{o} is not an integer source"),
        }),
    }
}

fn write_operand(cpu: &mut Cpu, o: &Operand, v: u32, width: Width) -> Result<(), ExecError> {
    match o {
        Operand::Reg(r) => {
            cpu.write(*r, v);
            Ok(())
        }
        Operand::Mem(m) => cpu.mem.store(mem_addr(cpu, *m), v, width),
        other => Err(ExecError::MalformedInstruction {
            detail: format!("{other} is not a writable destination"),
        }),
    }
}

fn read_f(cpu: &Cpu, o: &Operand) -> Result<f32, ExecError> {
    match o {
        Operand::Xmm(x) => Ok(cpu.read_x(*x)),
        Operand::Mem(m) => Ok(f32::from_bits(cpu.mem.load32(mem_addr(cpu, *m))?)),
        other => Err(ExecError::MalformedInstruction {
            detail: format!("{other} is not a float source"),
        }),
    }
}

pub(crate) fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, Flags) {
    let wide = u64::from(a) + u64::from(b) + u64::from(carry_in);
    let result = wide as u32;
    let mut f = Flags {
        c: wide > u64::from(u32::MAX),
        v: (!(a ^ b) & (a ^ result)) & 0x8000_0000 != 0,
        ..Flags::default()
    };
    f.set_nz(result);
    (result, f)
}

pub(crate) fn sub_with_borrow(a: u32, b: u32, borrow_in: bool) -> (u32, Flags) {
    // x86: CF = borrow (set when a < b + borrow_in).
    let (r, f) = add_with_carry(a, !b, !borrow_in);
    (r, Flags { c: !f.c, ..f })
}

pub(crate) fn logic_flags(result: u32) -> Flags {
    let mut f = Flags::default(); // CF = OF = 0
    f.set_nz(result);
    f
}

/// The result of stepping one instruction inside a block. Shared with
/// the threaded-code compiler (`crate::threaded`), whose pre-compiled
/// handlers return the same control decisions as the model's `step`.
pub(crate) enum Step {
    Next,
    Rel(i32),
    Exit(BlockExit),
}

pub(crate) fn step(cpu: &mut Cpu, inst: &Inst) -> Result<Step, ExecError> {
    use Op::*;
    let ops = &inst.operands;
    match inst.op {
        Mov => {
            let v = read_operand(cpu, &ops[1], Width::B32)?;
            write_operand(cpu, &ops[0], v, Width::B32)?;
        }
        MovB | MovW => {
            let v = read_operand(cpu, &ops[1], Width::B32)?;
            write_operand(cpu, &ops[0], v, inst.op.access_width())?;
        }
        MovzxB | MovzxW => {
            let v = read_operand(cpu, &ops[1], inst.op.access_width())?;
            write_operand(cpu, &ops[0], v, Width::B32)?;
        }
        Lea => {
            let m = ops[1]
                .as_mem()
                .ok_or_else(|| ExecError::MalformedInstruction {
                    detail: "lea needs a memory source".into(),
                })?;
            let a = mem_addr(cpu, m);
            write_operand(cpu, &ops[0], a, Width::B32)?;
        }
        Add | Adc | Sub | Sbb | Cmp => {
            let a = read_operand(cpu, &ops[0], Width::B32)?;
            let b = read_operand(cpu, &ops[1], Width::B32)?;
            let carry = cpu.flags.c;
            let (r, f) = match inst.op {
                Add => add_with_carry(a, b, false),
                Adc => add_with_carry(a, b, carry),
                Sub | Cmp => sub_with_borrow(a, b, false),
                Sbb => sub_with_borrow(a, b, carry),
                _ => unreachable!(),
            };
            cpu.flags = f;
            if inst.op != Cmp {
                write_operand(cpu, &ops[0], r, Width::B32)?;
            }
        }
        And | Or | Xor | Test => {
            let a = read_operand(cpu, &ops[0], Width::B32)?;
            let b = read_operand(cpu, &ops[1], Width::B32)?;
            let r = match inst.op {
                And | Test => a & b,
                Or => a | b,
                Xor => a ^ b,
                _ => unreachable!(),
            };
            cpu.flags = logic_flags(r);
            if inst.op != Test {
                write_operand(cpu, &ops[0], r, Width::B32)?;
            }
        }
        Imul => {
            let a = read_operand(cpu, &ops[0], Width::B32)?;
            let b = read_operand(cpu, &ops[1], Width::B32)?;
            // Flags are modelled as undefined (left unchanged).
            write_operand(cpu, &ops[0], a.wrapping_mul(b), Width::B32)?;
        }
        MulWide => {
            let a = cpu.read(Reg::Eax);
            let b = read_operand(cpu, &ops[0], Width::B32)?;
            let wide = u64::from(a) * u64::from(b);
            cpu.write(Reg::Eax, wide as u32);
            cpu.write(Reg::Edx, (wide >> 32) as u32);
        }
        Shl | Shr | Sar | Ror => {
            let a = read_operand(cpu, &ops[0], Width::B32)?;
            let amt = (read_operand(cpu, &ops[1], Width::B32)? & 31) as u8;
            if amt == 0 {
                // No flag change, no write needed, but write keeps RMW
                // semantics uniform.
                write_operand(cpu, &ops[0], a, Width::B32)?;
            } else {
                let kind = match inst.op {
                    Shl => ShiftOp::Lsl,
                    Shr => ShiftOp::Lsr,
                    Sar => ShiftOp::Asr,
                    _ => ShiftOp::Ror,
                };
                let (r, c) = apply_shift(kind, a, amt);
                if inst.op == Ror {
                    cpu.flags.c = c;
                } else {
                    let mut f = Flags {
                        c,
                        v: cpu.flags.v,
                        ..Flags::default()
                    };
                    f.set_nz(r);
                    cpu.flags = f;
                }
                write_operand(cpu, &ops[0], r, Width::B32)?;
            }
        }
        Not => {
            let a = read_operand(cpu, &ops[0], Width::B32)?;
            write_operand(cpu, &ops[0], !a, Width::B32)?;
        }
        Neg => {
            let a = read_operand(cpu, &ops[0], Width::B32)?;
            let (r, f) = sub_with_borrow(0, a, false);
            cpu.flags = f;
            write_operand(cpu, &ops[0], r, Width::B32)?;
        }
        Bsr => {
            let src = read_operand(cpu, &ops[1], Width::B32)?;
            if src == 0 {
                cpu.flags.z = true;
            } else {
                cpu.flags.z = false;
                write_operand(cpu, &ops[0], 31 - src.leading_zeros(), Width::B32)?;
            }
        }
        Push => {
            let v = read_operand(cpu, &ops[0], Width::B32)?;
            let sp = cpu.read(Reg::Esp).wrapping_sub(4);
            cpu.mem.store32(sp, v)?;
            cpu.write(Reg::Esp, sp);
        }
        Pop => {
            let sp = cpu.read(Reg::Esp);
            let v = cpu.mem.load32(sp)?;
            cpu.write(Reg::Esp, sp.wrapping_add(4));
            write_operand(cpu, &ops[0], v, Width::B32)?;
        }
        Jmp => match ops[0] {
            Operand::Target(d) => return Ok(Step::Rel(d)),
            _ => {
                let v = read_operand(cpu, &ops[0], Width::B32)?;
                return Ok(Step::Exit(BlockExit::Jumped(v)));
            }
        },
        Jcc => {
            let Operand::Target(d) = ops[0] else {
                unreachable!("validated")
            };
            if inst.cc.expect("validated").eval(cpu.flags) {
                return Ok(Step::Rel(d));
            }
        }
        Call | Ret => {
            return Err(ExecError::Undefined {
                detail: format!("{} inside a translation block", inst.op),
            })
        }
        Setcc => {
            let v = u32::from(inst.cc.expect("validated").eval(cpu.flags));
            write_operand(cpu, &ops[0], v, Width::B32)?;
        }
        Out => {
            let v = cpu.read(Reg::Eax);
            cpu.output.push(v);
        }
        Hlt => return Ok(Step::Exit(BlockExit::Halted)),
        Movss => {
            let v = read_f(cpu, &ops[1]).map_err(|_| ExecError::MalformedInstruction {
                detail: format!("{inst}"),
            })?;
            match &ops[0] {
                Operand::Xmm(x) => cpu.write_x(*x, v),
                Operand::Mem(m) => cpu.mem.store32(mem_addr(cpu, *m), v.to_bits())?,
                other => {
                    return Err(ExecError::MalformedInstruction {
                        detail: format!("movss destination {other}"),
                    })
                }
            }
        }
        Addss | Subss | Mulss | Divss => {
            let Operand::Xmm(x) = ops[0] else {
                unreachable!("validated")
            };
            let a = cpu.read_x(x);
            let b = read_f(cpu, &ops[1])?;
            let r = match inst.op {
                Addss => a + b,
                Subss => a - b,
                Mulss => a * b,
                Divss => a / b,
                _ => unreachable!(),
            };
            cpu.write_x(x, r);
        }
        Ucomiss => {
            let Operand::Xmm(x) = ops[0] else {
                unreachable!("validated")
            };
            let a = cpu.read_x(x);
            let b = read_f(cpu, &ops[1])?;
            let unordered = a.is_nan() || b.is_nan();
            cpu.flags = Flags {
                z: unordered || a == b,
                c: unordered || a < b,
                n: false,
                v: false,
            };
        }
    }
    Ok(Step::Next)
}

// Local alias so the shift helper can borrow the guest crate's tested
// barrel-shifter arithmetic without a dependency edge.
#[derive(Clone, Copy)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum ShiftOp {
    Lsl,
    Lsr,
    Asr,
    Ror,
}

pub(crate) fn apply_shift(kind: ShiftOp, v: u32, amount: u8) -> (u32, bool) {
    let a = u32::from(amount);
    match kind {
        ShiftOp::Lsl => (v << a, (v >> (32 - a)) & 1 != 0),
        ShiftOp::Lsr => (v >> a, (v >> (a - 1)) & 1 != 0),
        ShiftOp::Asr => (((v as i32) >> a) as u32, ((v as i32) >> (a - 1)) & 1 != 0),
        ShiftOp::Ror => (v.rotate_right(a), (v >> (a - 1)) & 1 != 0),
    }
}

/// Statistics of one block execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Host instructions retired.
    pub executed: u64,
}

/// Executes a straight-line block of host instructions on `cpu`.
///
/// # Errors
///
/// Any interpreter error; [`ExecError::Timeout`] if more than `budget`
/// instructions retire; [`ExecError::BadPc`] if a relative jump leaves
/// the block.
pub fn exec_block(
    cpu: &mut Cpu,
    insts: &[Inst],
    budget: u64,
) -> Result<(BlockExit, ExecStats), ExecError> {
    exec_block_impl(cpu, insts, budget, &mut |_| {})
}

/// Like [`exec_block`], but also reports how many times each
/// instruction index retired (the DBT runtime uses this to attribute
/// executed host instructions to their code class).
///
/// # Errors
///
/// See [`exec_block`].
pub fn exec_block_traced(
    cpu: &mut Cpu,
    insts: &[Inst],
    budget: u64,
) -> Result<(BlockExit, ExecStats, Vec<u32>), ExecError> {
    let mut counts = Vec::new();
    let (exit, stats) = exec_block_traced_into(cpu, insts, budget, &mut counts)?;
    Ok((exit, stats, counts))
}

/// Like [`exec_block_traced`], but writes retire counts into a
/// caller-owned buffer (cleared and resized to `insts.len()`) so a
/// dispatch loop executing millions of blocks reuses one allocation.
///
/// # Errors
///
/// See [`exec_block`].
pub fn exec_block_traced_into(
    cpu: &mut Cpu,
    insts: &[Inst],
    budget: u64,
    counts: &mut Vec<u32>,
) -> Result<(BlockExit, ExecStats), ExecError> {
    counts.clear();
    counts.resize(insts.len(), 0);
    exec_block_impl(cpu, insts, budget, &mut |ip| counts[ip] += 1)
}

fn exec_block_impl(
    cpu: &mut Cpu,
    insts: &[Inst],
    budget: u64,
    on_retire: &mut dyn FnMut(usize),
) -> Result<(BlockExit, ExecStats), ExecError> {
    let mut ip: usize = 0;
    let mut stats = ExecStats::default();
    while ip < insts.len() {
        if stats.executed >= budget {
            return Err(ExecError::Timeout { budget });
        }
        let inst = &insts[ip];
        stats.executed += 1;
        on_retire(ip);
        match step(cpu, inst)? {
            Step::Next => ip += 1,
            Step::Rel(d) => {
                let next = ip as i64 + 1 + i64::from(d);
                if next < 0 || next as usize > insts.len() {
                    return Err(ExecError::BadPc { pc: next as u32 });
                }
                ip = next as usize;
            }
            Step::Exit(e) => return Ok((e, stats)),
        }
    }
    Ok((BlockExit::Fell, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::operand::Cc;

    fn cpu() -> Cpu {
        let mut c = Cpu::new();
        c.mem.map(0x1_0000, 0x1000);
        c.mem.map(0x8_0000, 0x1000);
        c.write(Reg::Esp, 0x8_1000);
        c
    }

    fn run(cpu: &mut Cpu, insts: &[Inst]) -> BlockExit {
        exec_block(cpu, insts, 10_000).expect("block runs").0
    }

    #[test]
    fn mov_and_add() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(5)),
                mov(Reg::Ecx.into(), Operand::Imm(7)),
                add(Reg::Eax.into(), Reg::Ecx.into()),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 12);
    }

    #[test]
    fn sub_sets_borrow_carry() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(3)),
                sub(Reg::Eax.into(), Operand::Imm(5)),
            ],
        );
        assert_eq!(c.read(Reg::Eax) as i32, -2);
        assert!(c.flags.c, "x86 CF is set on borrow");
        assert!(c.flags.n);
        // Compare without writing.
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(9)),
                cmp(Reg::Eax.into(), Operand::Imm(4)),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 9);
        assert!(!c.flags.c);
    }

    #[test]
    fn adc_sbb_chain() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(-1)),
                add(Reg::Eax.into(), Operand::Imm(1)), // carry out
                mov(Reg::Ecx.into(), Operand::Imm(0)),
                adc(Reg::Ecx.into(), Operand::Imm(0)), // picks up carry
            ],
        );
        assert_eq!(c.read(Reg::Ecx), 1);
    }

    #[test]
    fn logic_clears_carry() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(3)),
                sub(Reg::Eax.into(), Operand::Imm(5)), // CF=1
                and(Reg::Eax.into(), Operand::Imm(0xff)),
            ],
        );
        assert!(!c.flags.c && !c.flags.v);
    }

    #[test]
    fn memory_operands() {
        let mut c = cpu();
        c.write(Reg::Ebp, 0x1_0000);
        run(
            &mut c,
            &[
                mov(Mem::base_disp(Reg::Ebp, 8).into(), Operand::Imm(0x1234)),
                mov(Reg::Eax.into(), Mem::base_disp(Reg::Ebp, 8).into()),
                add(Mem::base_disp(Reg::Ebp, 8).into(), Operand::Imm(1)),
                mov(Reg::Ecx.into(), Mem::base_disp(Reg::Ebp, 8).into()),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 0x1234);
        assert_eq!(c.read(Reg::Ecx), 0x1235);
    }

    #[test]
    fn narrow_moves() {
        let mut c = cpu();
        c.write(Reg::Ebp, 0x1_0000);
        run(
            &mut c,
            &[
                mov(Mem::base(Reg::Ebp).into(), Operand::Imm(-1)),
                mov(Reg::Eax.into(), Operand::Imm(0xab)),
                movb(Mem::base(Reg::Ebp).into(), Reg::Eax.into()),
                movzxb(Reg::Ecx.into(), Mem::base(Reg::Ebp).into()),
                movzxw(Reg::Edx.into(), Mem::base(Reg::Ebp).into()),
            ],
        );
        assert_eq!(c.read(Reg::Ecx), 0xab);
        assert_eq!(c.read(Reg::Edx), 0xffab);
    }

    #[test]
    fn lea_computes_address() {
        let mut c = cpu();
        c.write(Reg::Ebx, 100);
        c.write(Reg::Ecx, 20);
        run(
            &mut c,
            &[lea(
                Reg::Eax.into(),
                Mem {
                    base: Some(Reg::Ebx),
                    index: Some(Reg::Ecx),
                    disp: 3,
                }
                .into(),
            )],
        );
        assert_eq!(c.read(Reg::Eax), 123);
    }

    #[test]
    fn shifts_and_flags() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(1)),
                shl(Reg::Eax.into(), Operand::Imm(4)),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 16);
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(3)),
                shr(Reg::Eax.into(), Operand::Imm(1)),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 1);
        assert!(c.flags.c);
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(i32::MIN)),
                sar(Reg::Eax.into(), Operand::Imm(31)),
            ],
        );
        assert_eq!(c.read(Reg::Eax), u32::MAX);
    }

    #[test]
    fn mul_and_bsr() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(6)),
                imul(Reg::Eax.into(), Operand::Imm(7)),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 42);
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(-1)),
                mov(Reg::Ecx.into(), Operand::Imm(16)),
                mul_wide(Reg::Ecx.into()),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 0xffff_fff0);
        assert_eq!(c.read(Reg::Edx), 0xf);
        run(
            &mut c,
            &[
                mov(Reg::Ecx.into(), Operand::Imm(0x10)),
                bsr(Reg::Eax.into(), Reg::Ecx.into()),
            ],
        );
        assert_eq!(c.read(Reg::Eax), 4);
        assert!(!c.flags.z);
        run(
            &mut c,
            &[
                mov(Reg::Ecx.into(), Operand::Imm(0)),
                bsr(Reg::Eax.into(), Reg::Ecx.into()),
            ],
        );
        assert!(c.flags.z);
    }

    #[test]
    fn not_neg() {
        let mut c = cpu();
        run(
            &mut c,
            &[mov(Reg::Eax.into(), Operand::Imm(0)), not(Reg::Eax.into())],
        );
        assert_eq!(c.read(Reg::Eax), u32::MAX);
        run(
            &mut c,
            &[mov(Reg::Eax.into(), Operand::Imm(5)), neg(Reg::Eax.into())],
        );
        assert_eq!(c.read(Reg::Eax) as i32, -5);
        assert!(c.flags.c, "neg of nonzero sets CF");
    }

    #[test]
    fn push_pop() {
        let mut c = cpu();
        let sp0 = c.read(Reg::Esp);
        run(
            &mut c,
            &[
                push(Operand::Imm(11)),
                push(Operand::Imm(22)),
                pop(Reg::Eax.into()),
                pop(Reg::Ecx.into()),
            ],
        );
        assert_eq!((c.read(Reg::Eax), c.read(Reg::Ecx)), (22, 11));
        assert_eq!(c.read(Reg::Esp), sp0);
    }

    #[test]
    fn internal_jumps_and_exits() {
        let mut c = cpu();
        // if eax == 0 { ecx = 1 } else { ecx = 2 }
        let block = [
            mov(Reg::Eax.into(), Operand::Imm(0)),
            test(Reg::Eax.into(), Reg::Eax.into()),
            jcc(Cc::Ne, 2),
            mov(Reg::Ecx.into(), Operand::Imm(1)),
            jmp_rel(1),
            mov(Reg::Ecx.into(), Operand::Imm(2)),
            hlt(),
        ];
        assert_eq!(run(&mut c, &block), BlockExit::Halted);
        assert_eq!(c.read(Reg::Ecx), 1);
    }

    #[test]
    fn block_exit_jump() {
        let mut c = cpu();
        let exit = run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(0x40)),
                jmp_exit(Reg::Eax.into()),
            ],
        );
        assert_eq!(exit, BlockExit::Jumped(0x40));
        let exit = run(&mut c, &[jmp_exit(Operand::Imm(0x2000))]);
        assert_eq!(exit, BlockExit::Jumped(0x2000));
    }

    #[test]
    fn out_and_setcc() {
        let mut c = cpu();
        run(
            &mut c,
            &[
                mov(Reg::Eax.into(), Operand::Imm(7)),
                out(),
                cmp(Reg::Eax.into(), Operand::Imm(7)),
                setcc(Cc::E, Reg::Ecx.into()),
            ],
        );
        assert_eq!(c.output, vec![7]);
        assert_eq!(c.read(Reg::Ecx), 1);
    }

    #[test]
    fn float_ops() {
        let mut c = cpu();
        c.write_x(Xmm::new(1), 2.0);
        c.write_x(Xmm::new(2), 8.0);
        run(
            &mut c,
            &[
                movss(Xmm::new(0).into(), Xmm::new(1).into()),
                addss(Xmm::new(0), Xmm::new(2).into()),
                divss(Xmm::new(0), Xmm::new(1).into()),
            ],
        );
        assert_eq!(c.read_x(Xmm::new(0)), 5.0);
        run(&mut c, &[ucomiss(Xmm::new(1), Xmm::new(2).into())]);
        assert!(c.flags.c && !c.flags.z, "2.0 < 8.0");
    }

    #[test]
    fn budget_and_bad_jump() {
        let mut c = cpu();
        let spin = [jmp_rel(-1)];
        assert!(matches!(
            exec_block(&mut c, &spin, 5),
            Err(ExecError::Timeout { .. })
        ));
        let wild = [jmp_rel(100)];
        assert!(matches!(
            exec_block(&mut c, &wild, 5),
            Err(ExecError::BadPc { .. })
        ));
    }

    #[test]
    fn fell_off_end() {
        let mut c = cpu();
        assert_eq!(
            run(&mut c, &[mov(Reg::Eax.into(), Operand::Imm(1))]),
            BlockExit::Fell
        );
    }

    #[test]
    fn call_ret_rejected() {
        let mut c = cpu();
        assert!(matches!(
            exec_block(&mut c, &[ret()], 5),
            Err(ExecError::Undefined { .. })
        ));
    }
}
