//! Host instruction set: opcodes, shape validation, and classification
//! metadata for the host side of parameterized rules.

#[cfg(test)]
use crate::operand::Mem;
use crate::operand::{Cc, Operand};
use crate::reg::Reg;
use pdbt_isa::{DataType, EncodingFormat, ExecError, FlagSet, OpCategory, Width};
use std::fmt;

/// A host opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Op {
    // Moves.
    Mov,
    /// Narrow store of a register's low byte to memory.
    MovB,
    /// Narrow store of a register's low half to memory.
    MovW,
    /// Zero-extending byte load.
    MovzxB,
    /// Zero-extending halfword load.
    MovzxW,
    Lea,
    // Two-operand ALU.
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
    Imul,
    Shl,
    Shr,
    Sar,
    Ror,
    // One-operand ALU.
    Not,
    Neg,
    /// Widening multiply: `edx:eax = eax * src`.
    MulWide,
    /// Bit-scan-reverse (used to emulate `clz`); sets ZF on zero input.
    Bsr,
    // Compares.
    Cmp,
    Test,
    // Stack.
    Push,
    Pop,
    // Control.
    Jmp,
    Jcc,
    Call,
    Ret,
    Setcc,
    /// Emit `eax` to the output stream (models the forwarded `svc #1`).
    Out,
    /// Stop execution (models the forwarded `svc #0`).
    Hlt,
    // Scalar float (SSE-like).
    Movss,
    Addss,
    Subss,
    Mulss,
    Divss,
    Ucomiss,
}

/// Operand-shape class of a host opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// `op dst, src` — dst is reg/mem, src is reg/imm/mem (not both mem).
    Alu2,
    /// `op dst, src` — `mov`-style (same operand rules as `Alu2`).
    Mov2,
    /// `op mem, reg` — narrow store.
    NarrowStore,
    /// `op reg, mem` — widening load / `lea` / `bsr`.
    RegMem,
    /// `op dst` — `not`, `neg`, `mul`, `push`, `pop`.
    Unary,
    /// `op <target>` or `op reg/mem` — `jmp`/`call`.
    Branch,
    /// `jcc <target>` — conditional branch (carries a [`Cc`]).
    CondBranch,
    /// `setcc dst` — byte materialization of a condition.
    SetCc,
    /// No operands — `ret`, `out`, `hlt`.
    Nullary,
    /// `op xmm, xmm/mem` — scalar-float two-operand.
    Sse2Op,
    /// `movss dst, src` — xmm↔xmm/mem either direction.
    SseMov,
}

impl Op {
    /// All opcodes in encoding order.
    pub const ALL: [Op; 39] = [
        Op::Mov,
        Op::MovB,
        Op::MovW,
        Op::MovzxB,
        Op::MovzxW,
        Op::Lea,
        Op::Add,
        Op::Adc,
        Op::Sub,
        Op::Sbb,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Imul,
        Op::Shl,
        Op::Shr,
        Op::Sar,
        Op::Ror,
        Op::Not,
        Op::Neg,
        Op::MulWide,
        Op::Bsr,
        Op::Cmp,
        Op::Test,
        Op::Push,
        Op::Pop,
        Op::Jmp,
        Op::Jcc,
        Op::Call,
        Op::Ret,
        Op::Setcc,
        Op::Out,
        Op::Hlt,
        Op::Movss,
        Op::Addss,
        Op::Subss,
        Op::Mulss,
        Op::Divss,
        Op::Ucomiss,
    ];

    /// Encoding index.
    #[must_use]
    pub fn index(self) -> u8 {
        Op::ALL.iter().position(|o| *o == self).unwrap() as u8
    }

    /// Inverse of [`Op::index`].
    #[must_use]
    pub fn from_index(i: u8) -> Option<Op> {
        Op::ALL.get(i as usize).copied()
    }

    /// The operand-shape class.
    #[must_use]
    pub fn shape(self) -> Shape {
        use Op::*;
        match self {
            Mov => Shape::Mov2,
            MovB | MovW => Shape::NarrowStore,
            MovzxB | MovzxW | Lea | Bsr => Shape::RegMem,
            Add | Adc | Sub | Sbb | And | Or | Xor | Imul | Shl | Shr | Sar | Ror | Cmp | Test => {
                Shape::Alu2
            }
            Not | Neg | MulWide | Push | Pop => Shape::Unary,
            Jmp | Call => Shape::Branch,
            Jcc => Shape::CondBranch,
            Ret | Out | Hlt => Shape::Nullary,
            Setcc => Shape::SetCc,
            Movss => Shape::SseMov,
            Addss | Subss | Mulss | Divss | Ucomiss => Shape::Sse2Op,
        }
    }

    /// Data type for host-side subgroup classification.
    #[must_use]
    pub fn data_type(self) -> DataType {
        use Op::*;
        match self {
            Movss | Addss | Subss | Mulss | Divss | Ucomiss => DataType::Float,
            _ => DataType::Int,
        }
    }

    /// Encoding format for host-side subgroup classification.
    #[must_use]
    pub fn format(self) -> EncodingFormat {
        use Op::*;
        match self {
            Add | Adc | Sub | Sbb | And | Or | Xor | Imul | Shl | Shr | Sar | Ror | Cmp | Test => {
                EncodingFormat::HostAlu
            }
            Mov | MovB | MovW | MovzxB | MovzxW | Lea => EncodingFormat::HostMov,
            Not | Neg | MulWide | Bsr | Setcc => EncodingFormat::HostUnary,
            Jmp | Jcc | Call | Ret => EncodingFormat::HostBranch,
            Push | Pop | Out | Hlt => EncodingFormat::HostMisc,
            Movss | Addss | Subss | Mulss | Divss | Ucomiss => EncodingFormat::HostSse,
        }
    }

    /// Whether the two ALU sources commute (`add`, `and`, …).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        use Op::*;
        matches!(
            self,
            Add | Adc | And | Or | Xor | Imul | Test | Addss | Mulss
        )
    }

    /// Flags defined by this opcode (x86 semantics; `c` is CF with borrow
    /// polarity after subtraction).
    #[must_use]
    pub fn flag_defs(self) -> FlagSet {
        use pdbt_isa::Flag;
        use Op::*;
        match self {
            Add | Adc | Sub | Sbb | Neg | Cmp => FlagSet::NZCV,
            And | Or | Xor | Test => FlagSet::NZCV, // CF=OF=0, SF/ZF live
            Shl | Shr | Sar => FlagSet::NZC,
            Ror => FlagSet::single(Flag::C),
            Bsr => FlagSet::single(Flag::Z),
            Ucomiss => FlagSet::NZCV, // ZF/CF live, SF=OF=0
            _ => FlagSet::EMPTY,
        }
    }

    /// Flags read by this opcode.
    #[must_use]
    pub fn flag_uses(self) -> FlagSet {
        use pdbt_isa::Flag;
        match self {
            Op::Adc | Op::Sbb => FlagSet::single(Flag::C),
            Op::Jcc | Op::Setcc => FlagSet::NZCV,
            _ => FlagSet::EMPTY,
        }
    }

    /// Memory access width for narrow moves.
    #[must_use]
    pub fn access_width(self) -> Width {
        match self {
            Op::MovB | Op::MovzxB => Width::B8,
            Op::MovW | Op::MovzxW => Width::B16,
            _ => Width::B32,
        }
    }

    /// The mnemonic text.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Mov => "movl",
            MovB => "movb",
            MovW => "movw",
            MovzxB => "movzbl",
            MovzxW => "movzwl",
            Lea => "leal",
            Add => "addl",
            Adc => "adcl",
            Sub => "subl",
            Sbb => "sbbl",
            And => "andl",
            Or => "orl",
            Xor => "xorl",
            Imul => "imull",
            Shl => "shll",
            Shr => "shrl",
            Sar => "sarl",
            Ror => "rorl",
            Not => "notl",
            Neg => "negl",
            MulWide => "mull",
            Bsr => "bsrl",
            Cmp => "cmpl",
            Test => "testl",
            Push => "pushl",
            Pop => "popl",
            Jmp => "jmp",
            Jcc => "j",
            Call => "call",
            Ret => "ret",
            Setcc => "set",
            Out => "out",
            Hlt => "hlt",
            Movss => "movss",
            Addss => "addss",
            Subss => "subss",
            Mulss => "mulss",
            Divss => "divss",
            Ucomiss => "ucomiss",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A host instruction.
///
/// Operand order is **AT&T-free destination-first**: `addl dst, src`
/// means `dst += src` (Intel order), which keeps the rule templates
/// readable next to the paper's figures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// Condition for `Jcc`/`Setcc`.
    pub cc: Option<Cc>,
    /// Positional operands.
    pub operands: Vec<Operand>,
}

impl Inst {
    /// Creates an instruction and validates its shape.
    ///
    /// # Errors
    ///
    /// [`ExecError::MalformedInstruction`] on a shape violation.
    pub fn new(op: Op, operands: Vec<Operand>) -> Result<Inst, ExecError> {
        let inst = Inst {
            op,
            cc: None,
            operands,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Creates a `Jcc`/`Setcc` with its condition.
    ///
    /// # Errors
    ///
    /// [`ExecError::MalformedInstruction`] on a shape violation.
    pub fn new_cc(op: Op, cc: Cc, operands: Vec<Operand>) -> Result<Inst, ExecError> {
        let inst = Inst {
            op,
            cc: Some(cc),
            operands,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Validates the operand shape.
    ///
    /// # Errors
    ///
    /// [`ExecError::MalformedInstruction`] describing the violation.
    pub fn validate(&self) -> Result<(), ExecError> {
        let bad = |detail: String| Err(ExecError::MalformedInstruction { detail });
        let ops = &self.operands;
        let is_reg = |o: &Operand| matches!(o, Operand::Reg(_));
        let is_mem = |o: &Operand| matches!(o, Operand::Mem(_));
        let is_rm = |o: &Operand| is_reg(o) || is_mem(o);
        let is_rmi = |o: &Operand| is_rm(o) || matches!(o, Operand::Imm(_));
        let is_xmm = |o: &Operand| matches!(o, Operand::Xmm(_));
        let both_mem = |a: &Operand, b: &Operand| is_mem(a) && is_mem(b);
        let ok = match self.op.shape() {
            Shape::Alu2 | Shape::Mov2 => {
                ops.len() == 2 && is_rm(&ops[0]) && is_rmi(&ops[1]) && !both_mem(&ops[0], &ops[1])
            }
            Shape::NarrowStore => ops.len() == 2 && is_mem(&ops[0]) && is_reg(&ops[1]),
            Shape::RegMem => ops.len() == 2 && is_reg(&ops[0]) && is_rm(&ops[1]),
            Shape::Unary => {
                ops.len() == 1
                    && (is_rm(&ops[0])
                        || (self.op == Op::Push && matches!(ops[0], Operand::Imm(_))))
            }
            Shape::Branch => {
                ops.len() == 1 && (matches!(ops[0], Operand::Target(_)) || is_rmi(&ops[0]))
            }
            Shape::CondBranch => ops.len() == 1 && matches!(ops[0], Operand::Target(_)),
            Shape::SetCc => ops.len() == 1 && is_rm(&ops[0]),
            Shape::Nullary => ops.is_empty(),
            Shape::Sse2Op => {
                ops.len() == 2 && is_xmm(&ops[0]) && (is_xmm(&ops[1]) || is_mem(&ops[1]))
            }
            Shape::SseMov => {
                ops.len() == 2
                    && (is_xmm(&ops[0]) || is_mem(&ops[0]))
                    && (is_xmm(&ops[1]) || is_mem(&ops[1]))
                    && !both_mem(&ops[0], &ops[1])
            }
        };
        if !ok {
            return bad(format!("operand shape mismatch for {self}"));
        }
        if matches!(self.op.shape(), Shape::CondBranch | Shape::SetCc) && self.cc.is_none() {
            return bad(format!("{} requires a condition code", self.op));
        }
        if !matches!(self.op.shape(), Shape::CondBranch | Shape::SetCc) && self.cc.is_some() {
            return bad(format!("{} does not take a condition code", self.op));
        }
        Ok(())
    }

    /// Operation category for host-side subgroup classification. For
    /// `mov` the category depends on the operand direction, mirroring the
    /// guest's `ldr`/`str`/`mov` split.
    #[must_use]
    pub fn category(&self) -> OpCategory {
        use Op::*;
        match self.op {
            Mov | Movss => {
                if self.operands[0].as_mem().is_some() {
                    OpCategory::StoreToMem
                } else {
                    OpCategory::LoadToReg
                }
            }
            MovB | MovW => OpCategory::StoreToMem,
            MovzxB | MovzxW | Lea | Pop => OpCategory::LoadToReg,
            Add | Adc | Sub | Sbb | And | Or | Xor | Imul | Shl | Shr | Sar | Ror | Not | Neg
            | MulWide | Bsr | Addss | Subss | Mulss | Divss => OpCategory::ArithLogic,
            Cmp | Test | Ucomiss => OpCategory::Compare,
            Push | Jmp | Jcc | Call | Ret | Setcc | Out | Hlt => OpCategory::Other,
        }
    }

    /// Host registers written.
    pub fn defs(&self) -> Vec<Reg> {
        use Shape::*;
        match self.op.shape() {
            Alu2 if matches!(self.op, Op::Cmp | Op::Test) => vec![],
            Alu2 | Mov2 | RegMem | SetCc => self.operands[0].as_reg().into_iter().collect(),
            Unary => match self.op {
                Op::MulWide => vec![Reg::Eax, Reg::Edx],
                Op::Push => vec![Reg::Esp],
                Op::Pop => {
                    let mut v = vec![Reg::Esp];
                    v.extend(self.operands[0].as_reg());
                    v
                }
                _ => self.operands[0].as_reg().into_iter().collect(),
            },
            NarrowStore | Branch | CondBranch | Nullary | Sse2Op | SseMov => match self.op {
                Op::Call => vec![Reg::Esp],
                Op::Ret => vec![Reg::Esp],
                _ => vec![],
            },
        }
    }

    /// Host registers read.
    pub fn uses(&self) -> Vec<Reg> {
        use Shape::*;
        let mut v: Vec<Reg> = match self.op.shape() {
            Alu2 => {
                // dst is read-modify-write except for mov-like ops.
                let mut v = self.operands[0].uses();
                v.extend(self.operands[1].uses());
                v
            }
            Mov2 => {
                let mut v = self.operands[1].uses();
                if let Some(m) = self.operands[0].as_mem() {
                    v.extend(m.uses());
                }
                v
            }
            NarrowStore => {
                let mut v = self.operands[0].uses();
                v.extend(self.operands[1].uses());
                v
            }
            RegMem => self.operands[1].uses(),
            Unary => match self.op {
                Op::MulWide => {
                    let mut v = vec![Reg::Eax];
                    v.extend(self.operands[0].uses());
                    v
                }
                Op::Push => {
                    let mut v = vec![Reg::Esp];
                    v.extend(self.operands[0].uses());
                    v
                }
                Op::Pop => vec![Reg::Esp],
                _ => self.operands[0].uses(),
            },
            Branch => self.operands[0].uses(),
            CondBranch | Nullary => match self.op {
                Op::Ret => vec![Reg::Esp],
                Op::Out => vec![Reg::Eax],
                _ => vec![],
            },
            SetCc => vec![],
            Sse2Op | SseMov => {
                let mut v = vec![];
                for o in &self.operands {
                    if let Some(m) = o.as_mem() {
                        v.extend(m.uses());
                    }
                }
                v
            }
        };
        v.dedup();
        v
    }

    /// Flags defined.
    #[must_use]
    pub fn flag_defs(&self) -> FlagSet {
        self.op.flag_defs()
    }

    /// Flags read.
    #[must_use]
    pub fn flag_uses(&self) -> FlagSet {
        self.op.flag_uses()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Jcc | Op::Setcc => write!(f, "{}{}", self.op, self.cc.expect("validated cc"))?,
            _ => write!(f, "{}", self.op)?,
        }
        let mut first = true;
        for o in &self.operands {
            if first {
                write!(f, " {o}")?;
                first = false;
            } else {
                write!(f, ", {o}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::reg::Xmm;

    #[test]
    fn opcode_index_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_index(op.index()), Some(op));
        }
    }

    #[test]
    fn validation_accepts_and_rejects() {
        assert!(add(Reg::Eax.into(), Reg::Ecx.into()).validate().is_ok());
        assert!(add(Mem::base(Reg::Ebp).into(), Operand::Imm(4))
            .validate()
            .is_ok());
        // mem,mem is illegal.
        let i = Inst {
            op: Op::Add,
            cc: None,
            operands: vec![Mem::base(Reg::Eax).into(), Mem::base(Reg::Ecx).into()],
        };
        assert!(i.validate().is_err());
        // jcc without cc is illegal.
        let i = Inst {
            op: Op::Jcc,
            cc: None,
            operands: vec![Operand::Target(1)],
        };
        assert!(i.validate().is_err());
        // cc on a non-cc opcode is illegal.
        let i = Inst {
            op: Op::Add,
            cc: Some(Cc::E),
            operands: vec![Reg::Eax.into(), Operand::Imm(1)],
        };
        assert!(i.validate().is_err());
        // imm destination is illegal.
        let i = Inst {
            op: Op::Mov,
            cc: None,
            operands: vec![Operand::Imm(1), Reg::Eax.into()],
        };
        assert!(i.validate().is_err());
    }

    #[test]
    fn mov_category_depends_on_direction() {
        assert_eq!(
            mov(Reg::Eax.into(), Mem::base(Reg::Ebp).into()).category(),
            OpCategory::LoadToReg
        );
        assert_eq!(
            mov(Mem::base(Reg::Ebp).into(), Reg::Eax.into()).category(),
            OpCategory::StoreToMem
        );
        assert_eq!(
            mov(Reg::Eax.into(), Operand::Imm(3)).category(),
            OpCategory::LoadToReg
        );
        assert_eq!(
            add(Reg::Eax.into(), Operand::Imm(3)).category(),
            OpCategory::ArithLogic
        );
        assert_eq!(
            cmp(Reg::Eax.into(), Operand::Imm(3)).category(),
            OpCategory::Compare
        );
    }

    #[test]
    fn defs_uses() {
        let i = add(Reg::Eax.into(), Reg::Ecx.into());
        assert_eq!(i.defs(), vec![Reg::Eax]);
        assert_eq!(i.uses(), vec![Reg::Eax, Reg::Ecx]);
        let i = mov(Mem::base_disp(Reg::Ebp, 8).into(), Reg::Edx.into());
        assert!(i.defs().is_empty());
        assert_eq!(i.uses(), vec![Reg::Edx, Reg::Ebp]);
        let i = mul_wide(Reg::Ecx.into());
        assert_eq!(i.defs(), vec![Reg::Eax, Reg::Edx]);
        assert_eq!(i.uses(), vec![Reg::Eax, Reg::Ecx]);
        let i = cmp(Reg::Eax.into(), Operand::Imm(0));
        assert!(i.defs().is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            add(Reg::Eax.into(), Operand::Imm(5)).to_string(),
            "addl eax, $5"
        );
        assert_eq!(
            mov(Reg::Ecx.into(), Mem::base_disp(Reg::Ebp, 4).into()).to_string(),
            "movl ecx, [ebp+4]"
        );
        assert_eq!(jcc(Cc::Ne, 2).to_string(), "jne .+2");
        assert_eq!(setcc(Cc::E, Reg::Eax.into()).to_string(), "sete eax");
        assert_eq!(hlt().to_string(), "hlt");
        assert_eq!(
            addss(Xmm::new(0), Xmm::new(1).into()).to_string(),
            "addss xmm0, xmm1"
        );
    }

    #[test]
    fn flags_metadata() {
        assert_eq!(Op::Add.flag_defs(), FlagSet::NZCV);
        assert_eq!(Op::Mov.flag_defs(), FlagSet::EMPTY);
        assert!(Op::Adc.flag_uses().contains(pdbt_isa::Flag::C));
        assert_eq!(Op::Jcc.flag_uses(), FlagSet::NZCV);
        assert!(
            Op::Imul.flag_defs().is_empty(),
            "imul flags are modelled as undefined"
        );
    }
}
