//! Ergonomic constructors for host instructions (panic on shape
//! violations; use [`Inst::new`] for fallible construction).

use crate::inst::{Inst, Op};
use crate::operand::{Cc, Operand};
#[cfg(test)]
use crate::reg::Reg;
use crate::reg::Xmm;

fn build(op: Op, operands: Vec<Operand>) -> Inst {
    Inst::new(op, operands).expect("builder produced a malformed instruction")
}

macro_rules! two_op {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            #[must_use]
            pub fn $name(dst: Operand, src: Operand) -> Inst {
                build(Op::$op, vec![dst, src])
            }
        )*
    };
}

two_op! {
    /// `movl dst, src`
    mov => Mov,
    /// `addl dst, src`
    add => Add,
    /// `adcl dst, src`
    adc => Adc,
    /// `subl dst, src`
    sub => Sub,
    /// `sbbl dst, src`
    sbb => Sbb,
    /// `andl dst, src`
    and => And,
    /// `orl dst, src`
    or => Or,
    /// `xorl dst, src`
    xor => Xor,
    /// `imull dst, src`
    imul => Imul,
    /// `shll dst, src`
    shl => Shl,
    /// `shrl dst, src`
    shr => Shr,
    /// `sarl dst, src`
    sar => Sar,
    /// `rorl dst, src`
    ror => Ror,
    /// `cmpl a, b`
    cmp => Cmp,
    /// `testl a, b`
    test => Test,
    /// `movb [mem], reg` — narrow byte store
    movb => MovB,
    /// `movw [mem], reg` — narrow halfword store
    movw => MovW,
    /// `movzbl reg, [mem]` — zero-extending byte load
    movzxb => MovzxB,
    /// `movzwl reg, [mem]` — zero-extending halfword load
    movzxw => MovzxW,
    /// `leal reg, [mem]`
    lea => Lea,
    /// `bsrl reg, r/m`
    bsr => Bsr,
}

/// `notl dst`
#[must_use]
pub fn not(dst: Operand) -> Inst {
    build(Op::Not, vec![dst])
}

/// `negl dst`
#[must_use]
pub fn neg(dst: Operand) -> Inst {
    build(Op::Neg, vec![dst])
}

/// `mull src` — `edx:eax = eax * src`
#[must_use]
pub fn mul_wide(src: Operand) -> Inst {
    build(Op::MulWide, vec![src])
}

/// `pushl src`
#[must_use]
pub fn push(src: Operand) -> Inst {
    build(Op::Push, vec![src])
}

/// `popl dst`
#[must_use]
pub fn pop(dst: Operand) -> Inst {
    build(Op::Pop, vec![dst])
}

/// `jmp .+d` — relative jump by `d` instructions.
#[must_use]
pub fn jmp_rel(d: i32) -> Inst {
    build(Op::Jmp, vec![Operand::Target(d)])
}

/// `jmp r/m/imm` — block exit; the operand value is the next guest PC.
#[must_use]
pub fn jmp_exit(target: Operand) -> Inst {
    build(Op::Jmp, vec![target])
}

/// `j<cc> .+d`
#[must_use]
pub fn jcc(cc: Cc, d: i32) -> Inst {
    Inst::new_cc(Op::Jcc, cc, vec![Operand::Target(d)]).expect("valid jcc")
}

/// `set<cc> dst` — dst := 0/1.
#[must_use]
pub fn setcc(cc: Cc, dst: Operand) -> Inst {
    Inst::new_cc(Op::Setcc, cc, vec![dst]).expect("valid setcc")
}

/// `ret`
#[must_use]
pub fn ret() -> Inst {
    build(Op::Ret, vec![])
}

/// `call <target>`
#[must_use]
pub fn call(target: Operand) -> Inst {
    build(Op::Call, vec![target])
}

/// `out` — emit `eax` to the output stream.
#[must_use]
pub fn out() -> Inst {
    build(Op::Out, vec![])
}

/// `hlt` — stop execution.
#[must_use]
pub fn hlt() -> Inst {
    build(Op::Hlt, vec![])
}

/// `movss dst, src`
#[must_use]
pub fn movss(dst: Operand, src: Operand) -> Inst {
    build(Op::Movss, vec![dst, src])
}

/// `addss xmm, src`
#[must_use]
pub fn addss(dst: Xmm, src: Operand) -> Inst {
    build(Op::Addss, vec![Operand::Xmm(dst), src])
}

/// `subss xmm, src`
#[must_use]
pub fn subss(dst: Xmm, src: Operand) -> Inst {
    build(Op::Subss, vec![Operand::Xmm(dst), src])
}

/// `mulss xmm, src`
#[must_use]
pub fn mulss(dst: Xmm, src: Operand) -> Inst {
    build(Op::Mulss, vec![Operand::Xmm(dst), src])
}

/// `divss xmm, src`
#[must_use]
pub fn divss(dst: Xmm, src: Operand) -> Inst {
    build(Op::Divss, vec![Operand::Xmm(dst), src])
}

/// `ucomiss xmm, src`
#[must_use]
pub fn ucomiss(a: Xmm, b: Operand) -> Inst {
    build(Op::Ucomiss, vec![Operand::Xmm(a), b])
}

impl From<Xmm> for Operand {
    fn from(x: Xmm) -> Operand {
        Operand::Xmm(x)
    }
}

// Re-export Reg for the common `Reg::Eax.into()` pattern in tests.
pub use crate::reg::Reg as HostReg;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Mem;

    #[test]
    fn builders_validate() {
        let insts = vec![
            mov(Reg::Eax.into(), Operand::Imm(1)),
            add(Reg::Eax.into(), Mem::base(Reg::Ebp).into()),
            not(Reg::Ecx.into()),
            neg(Mem::base_disp(Reg::Ebp, 4).into()),
            mul_wide(Reg::Ebx.into()),
            push(Operand::Imm(3)),
            pop(Reg::Edx.into()),
            jmp_rel(3),
            jmp_exit(Operand::Imm(0x1000)),
            jcc(Cc::E, -2),
            setcc(Cc::L, Reg::Eax.into()),
            ret(),
            out(),
            hlt(),
            movss(Xmm::new(0).into(), Mem::base(Reg::Eax).into()),
            addss(Xmm::new(1), Xmm::new(2).into()),
            ucomiss(Xmm::new(0), Xmm::new(1).into()),
            lea(Reg::Eax.into(), Mem::base_index(Reg::Ebx, Reg::Ecx).into()),
            bsr(Reg::Eax.into(), Reg::Ecx.into()),
            movzxb(Reg::Eax.into(), Mem::base(Reg::Esi).into()),
            movb(Mem::base(Reg::Edi).into(), Reg::Eax.into()),
        ];
        for i in insts {
            assert!(i.validate().is_ok(), "{i}");
        }
    }
}
