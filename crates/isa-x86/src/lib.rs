//! The host machine model: an x86-flavoured 32-bit two-operand CISC ISA.
//!
//! This crate is the host side of the DBT: destructive two-operand
//! instructions, `EFLAGS` with x86 polarity (CF is *borrow* after
//! subtraction — the opposite of the guest, which is what makes
//! condition-flag delegation interesting, see [`Cc::from_guest`]),
//! memory operands with base+index+displacement, a variable-length
//! binary encoding, and a block executor ([`exec_block`]) with QEMU-style
//! block-exit conventions.
//!
//! # Example
//!
//! ```
//! use pdbt_isa_x86::{builders::*, Cpu, Reg, Operand, BlockExit};
//!
//! let mut cpu = Cpu::new();
//! let block = [
//!     mov(Reg::Eax.into(), Operand::Imm(6)),
//!     imul(Reg::Eax.into(), Operand::Imm(7)),
//!     out(),
//!     hlt(),
//! ];
//! let (exit, _) = pdbt_isa_x86::exec_block(&mut cpu, &block, 100).unwrap();
//! assert_eq!(exit, BlockExit::Halted);
//! assert_eq!(cpu.output, vec![42]);
//! ```

pub mod builders;
mod encode;
mod inst;
mod interp;
mod operand;
mod reg;
mod threaded;

pub use encode::{decode, decode_block, encode, encode_block, DecodeError, EncodeError};
pub use inst::{Inst, Op, Shape};
pub use interp::{
    exec_block, exec_block_traced, exec_block_traced_into, BlockExit, Cpu, ExecStats,
};
pub use operand::{CarrySense, Cc, Mem, Operand};
pub use reg::{Reg, Xmm};
pub use threaded::{compile_block, exec_threaded_into, ThreadedCode};
