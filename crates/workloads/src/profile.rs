//! Per-benchmark workload profiles.
//!
//! Each of the twelve SPEC CINT 2006 benchmarks is modelled by a
//! profile preserving the dimensions the paper's experiments depend on:
//! its statement count (Table I), its opcode diversity (`h264ref` uses
//! far fewer instruction types — §V-B2), its flag-coupling density
//! (`libquantum`'s eor-dominated loop — §V-B2), its call density
//! (ABI-bound `push`/`pop`/`bl` that can never be rule-covered), and
//! its memory intensity.

use pdbt_compiler::lang::BinOp;
use pdbt_compiler::DegradeProfile;
use std::fmt;

/// The SPEC CINT 2006 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Perlbench,
    Bzip2,
    Gcc,
    Mcf,
    Gobmk,
    Hmmer,
    Sjeng,
    Libquantum,
    H264ref,
    Omnetpp,
    Astar,
    Xalancbmk,
}

impl Benchmark {
    /// All twelve, in the paper's table order.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Perlbench,
        Benchmark::Bzip2,
        Benchmark::Gcc,
        Benchmark::Mcf,
        Benchmark::Gobmk,
        Benchmark::Hmmer,
        Benchmark::Sjeng,
        Benchmark::Libquantum,
        Benchmark::H264ref,
        Benchmark::Omnetpp,
        Benchmark::Astar,
        Benchmark::Xalancbmk,
    ];

    /// The benchmark's name as the paper prints it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Perlbench => "perlbench",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Gcc => "gcc",
            Benchmark::Mcf => "mcf",
            Benchmark::Gobmk => "gobmk",
            Benchmark::Hmmer => "hmmer",
            Benchmark::Sjeng => "sjeng",
            Benchmark::Libquantum => "libquantum",
            Benchmark::H264ref => "h264ref",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::Astar => "astar",
            Benchmark::Xalancbmk => "xalancbmk",
        }
    }

    /// Source-statement count from the paper's Table I.
    #[must_use]
    pub fn paper_statements(self) -> usize {
        match self {
            Benchmark::Perlbench => 48_634,
            Benchmark::Bzip2 => 3_096,
            Benchmark::Gcc => 143_190,
            Benchmark::Mcf => 531,
            Benchmark::Gobmk => 27_975,
            Benchmark::Hmmer => 10_213,
            Benchmark::Sjeng => 4_933,
            Benchmark::Libquantum => 1_012,
            Benchmark::H264ref => 20_165,
            Benchmark::Omnetpp => 14_067,
            Benchmark::Astar => 1_516,
            Benchmark::Xalancbmk => 71_040,
        }
    }

    /// Deterministic per-benchmark RNG seed.
    #[must_use]
    pub fn seed(self) -> u64 {
        0x5eed_0000 + Benchmark::ALL.iter().position(|b| *b == self).unwrap() as u64
    }

    /// The workload profile.
    #[must_use]
    pub fn profile(self) -> Profile {
        let default_ops: Vec<(BinOp, u32)> = vec![
            (BinOp::Add, 24),
            (BinOp::Sub, 14),
            (BinOp::And, 8),
            (BinOp::Or, 6),
            (BinOp::Xor, 6),
            (BinOp::Shl, 5),
            (BinOp::Shr, 4),
            (BinOp::Mul, 5),
        ];
        let base = Profile {
            bench: self,
            op_weights: default_ops,
            mem_ratio: 0.22,
            call_ratio: 0.035,
            if_ratio: 0.10,
            shifted_ratio: 0.06,
            unary_ratio: 0.08,
            high_var_ratio: 0.18,
            flag_coupled_ratio: 0.04,
            special_ratio: 0.01,
            signature_ops: Vec::new(),
            rmw_bias: 0.55,
            imm_bias: 0.45,
            hot_loop_iters: 40,
            outer_iters: 24,
            degrade: DegradeProfile::default(),
        };
        match self {
            Benchmark::H264ref => Profile {
                // Few instruction types (§V-B2): mostly add/sub/mul and
                // memory traffic — no signature tail, so opcode
                // parameterization helps it least (paper: 5.1% coverage
                // gain vs the 10.1% average).
                op_weights: vec![(BinOp::Add, 40), (BinOp::Sub, 16), (BinOp::Mul, 12)],
                mem_ratio: 0.34,
                call_ratio: 0.008,
                if_ratio: 0.04,
                shifted_ratio: 0.01,
                unary_ratio: 0.02,
                hot_loop_iters: 64,
                ..base
            },
            Benchmark::Libquantum => Profile {
                // The eor-dominated, flag-coupled hot loop (§V-B2).
                op_weights: vec![
                    (BinOp::Xor, 40),
                    (BinOp::Add, 12),
                    (BinOp::And, 8),
                    (BinOp::Shl, 6),
                ],
                signature_ops: vec![(BinOp::Xor, 30)],
                rmw_bias: 0.85,
                flag_coupled_ratio: 0.22,
                mem_ratio: 0.15,
                call_ratio: 0.01,
                hot_loop_iters: 64,
                ..base
            },
            Benchmark::Gcc => Profile {
                // Call- and branch-heavy, with a bit-manipulation tail.
                call_ratio: 0.06,
                if_ratio: 0.13,
                high_var_ratio: 0.26,
                hot_loop_iters: 24,
                signature_ops: vec![(BinOp::AndNot, 18), (BinOp::Ror, 14)],
                rmw_bias: 0.30,
                degrade: DegradeProfile {
                    drop: 0.34,
                    merge: 0.12,
                    skew: 0.08,
                },
                ..base
            },
            Benchmark::Perlbench => Profile {
                call_ratio: 0.06,
                if_ratio: 0.13,
                high_var_ratio: 0.26,
                hot_loop_iters: 24,
                signature_ops: vec![(BinOp::Or, 20), (BinOp::Shr, 16)],
                imm_bias: 0.70,
                degrade: DegradeProfile {
                    drop: 0.34,
                    merge: 0.12,
                    skew: 0.08,
                },
                ..base
            },
            Benchmark::Xalancbmk => Profile {
                call_ratio: 0.06,
                if_ratio: 0.13,
                high_var_ratio: 0.26,
                hot_loop_iters: 24,
                signature_ops: vec![(BinOp::Sub, 22), (BinOp::And, 14)],
                rmw_bias: 0.20,
                imm_bias: 0.25,
                degrade: DegradeProfile {
                    drop: 0.34,
                    merge: 0.12,
                    skew: 0.08,
                },
                ..base
            },
            Benchmark::Mcf => Profile {
                // Tiny, pointer-chasing kernel.
                mem_ratio: 0.42,
                call_ratio: 0.01,
                if_ratio: 0.10,
                hot_loop_iters: 96,
                signature_ops: vec![(BinOp::Sar, 16)],
                rmw_bias: 0.25,
                ..base
            },
            Benchmark::Sjeng => Profile {
                // Search codes: branchy with bit tricks.
                if_ratio: 0.14,
                shifted_ratio: 0.10,
                flag_coupled_ratio: 0.07,
                signature_ops: vec![(BinOp::Ror, 20), (BinOp::Xor, 12)],
                imm_bias: 0.65,
                ..base
            },
            Benchmark::Gobmk => Profile {
                if_ratio: 0.14,
                shifted_ratio: 0.12,
                flag_coupled_ratio: 0.07,
                signature_ops: vec![(BinOp::Or, 16), (BinOp::AndNot, 14)],
                rmw_bias: 0.30,
                ..base
            },
            Benchmark::Hmmer => Profile {
                mem_ratio: 0.30,
                hot_loop_iters: 72,
                if_ratio: 0.06,
                signature_ops: vec![(BinOp::Mul, 20), (BinOp::Sar, 12)],
                rmw_bias: 0.25,
                ..base
            },
            Benchmark::Omnetpp => Profile {
                call_ratio: 0.05,
                high_var_ratio: 0.24,
                signature_ops: vec![(BinOp::Shl, 16), (BinOp::Sub, 14)],
                imm_bias: 0.70,
                rmw_bias: 0.25,
                ..base
            },
            Benchmark::Astar => Profile {
                mem_ratio: 0.28,
                shifted_ratio: 0.08,
                signature_ops: vec![(BinOp::Shr, 18)],
                rmw_bias: 0.25,
                imm_bias: 0.65,
                ..base
            },
            Benchmark::Bzip2 => Profile {
                mem_ratio: 0.28,
                shifted_ratio: 0.12,
                signature_ops: vec![(BinOp::Shr, 16), (BinOp::And, 12)],
                imm_bias: 0.70,
                ..base
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable workload characteristics.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Which benchmark this profiles.
    pub bench: Benchmark,
    /// Weighted binary-operator mix (diversity is the `h264ref` knob).
    pub op_weights: Vec<(BinOp, u32)>,
    /// Fraction of statements that touch memory.
    pub mem_ratio: f64,
    /// Fraction of statements that are function calls.
    pub call_ratio: f64,
    /// Fraction of statements that open a forward-branch `if` group.
    pub if_ratio: f64,
    /// Fraction of ALU statements using the shifted-register mode.
    pub shifted_ratio: f64,
    /// Fraction of statements that are unary (`mov`/`mvn`/`neg`).
    pub unary_ratio: f64,
    /// Fraction of statements using frame-slot (unmappable) variables.
    pub high_var_ratio: f64,
    /// Fraction of statements forming flag-coupled groups (fused
    /// S-instruction + conditional branch).
    pub flag_coupled_ratio: f64,
    /// Fraction of statements using the special `mla`/`clz` intrinsics
    /// (the unlearnables).
    pub special_ratio: f64,
    /// Benchmark-signature operators mixed into the hot statement
    /// sampler: each benchmark leans on operators (and operand shapes)
    /// that the *other* eleven rarely emit, so leave-one-out training
    /// misses them — the uncovered tail that parameterization recovers
    /// (paper §II-B: 1178 add rules, 34 eor, none for rsc).
    pub signature_ops: Vec<(BinOp, u32)>,
    /// Probability that an ALU statement is read-modify-write
    /// (`dst == a`); varying it shifts the dependence-pattern mix the
    /// addressing-mode dimension must cover.
    pub rmw_bias: f64,
    /// Probability that an ALU second operand is an immediate.
    pub imm_bias: f64,
    /// Iterations of each hot inner loop.
    pub hot_loop_iters: u32,
    /// Iterations of the entry function's outer loop.
    pub outer_iters: u32,
    /// Debug-map imprecision (funnel calibration).
    pub degrade: DegradeProfile,
}

/// Workload scale: divides the paper's statement counts so the learning
/// pipeline stays fast while preserving relative benchmark sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// The divisor applied to Table I statement counts.
    pub divisor: usize,
    /// Cap on statements per benchmark after division.
    pub cap: usize,
}

impl Scale {
    /// Benchmark-quality scale (hundreds of statements per program).
    #[must_use]
    pub fn full() -> Scale {
        Scale {
            divisor: 100,
            cap: 1_500,
        }
    }

    /// Test-quality scale (dozens of statements).
    #[must_use]
    pub fn tiny() -> Scale {
        Scale {
            divisor: 1_000,
            cap: 150,
        }
    }

    /// The statement budget for a benchmark.
    #[must_use]
    pub fn statements(&self, b: Benchmark) -> usize {
        (b.paper_statements() / self.divisor).clamp(40, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_with_table1_counts() {
        assert_eq!(Benchmark::ALL.len(), 12);
        let total: usize = Benchmark::ALL.iter().map(|b| b.paper_statements()).sum();
        // Table I's (rounded) average row says 28 864.
        assert_eq!(total / 12, 28_864);
    }

    #[test]
    fn profiles_encode_paper_anomalies() {
        let h264 = Benchmark::H264ref.profile();
        let libq = Benchmark::Libquantum.profile();
        let gcc = Benchmark::Gcc.profile();
        assert!(
            h264.op_weights.len() < gcc.op_weights.len(),
            "h264ref: few opcode types"
        );
        assert!(
            libq.flag_coupled_ratio > gcc.flag_coupled_ratio,
            "libquantum: flag-coupled"
        );
        assert!(
            libq.op_weights
                .iter()
                .any(|(op, w)| *op == BinOp::Xor && *w >= 40),
            "libquantum: eor-dominated"
        );
        assert!(gcc.call_ratio > h264.call_ratio, "gcc: call heavy");
    }

    #[test]
    fn scale_respects_relative_sizes() {
        let s = Scale::full();
        assert!(s.statements(Benchmark::Gcc) > s.statements(Benchmark::Mcf));
        assert!(s.statements(Benchmark::Mcf) >= 40);
        assert!(Scale::tiny().statements(Benchmark::Gcc) <= 150);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.seed()).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }
}
