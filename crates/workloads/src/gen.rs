//! The synthetic benchmark program generator.
//!
//! Produces deterministic (seeded) programs in the compiler's statement
//! language following a [`Profile`]: an entry function with an outer
//! loop that calls a handful of hot functions, each built around a
//! counted inner loop whose body is sampled from the profile's
//! statement mix. Hot loops dominate execution — mirroring the paper's
//! observation that fewer than 5% of statements execute at runtime
//! (§II) — while the colder remainder still contributes statements to
//! the learning funnel.

use crate::profile::Profile;
use pdbt_compiler::lang::{
    BinOp, CmpKind, FuncId, Function, Label, Rvalue, SourceProgram, Stmt, UnOp, Var,
};
use pdbt_isa::Width;
use pdbt_isa_arm::ShiftKind;
use rand::rngs::StdRng;
use rand::Rng;

/// Guest data region base (also identity-mapped into host memory).
pub const DATA_BASE: u32 = 0x10_0000;
/// Guest data region size.
pub const DATA_SIZE: u32 = 0x1000;
/// Guest stack region base.
pub const STACK_BASE: u32 = 0x8_0000;
/// Guest stack region size.
pub const STACK_SIZE: u32 = 0x1000;

/// Reserved variables: `v0` loop counter, `v1` data base pointer.
const COUNTER: Var = Var(0);
const BASE: Var = Var(1);

struct Gen<'a> {
    rng: &'a mut StdRng,
    profile: &'a Profile,
    next_label: u16,
    stmts: Vec<Stmt>,
}

impl Gen<'_> {
    fn label(&mut self) -> Label {
        self.next_label += 1;
        Label(self.next_label - 1)
    }

    /// A data variable: low (register-resident) most of the time, high
    /// (frame-slot) with the profile's ratio.
    fn data_var(&mut self) -> Var {
        if self.rng.gen_bool(self.profile.high_var_ratio) {
            Var(self.rng.gen_range(4..8))
        } else {
            Var(self.rng.gen_range(2..4))
        }
    }

    fn low_var(&mut self) -> Var {
        Var(self.rng.gen_range(2..4))
    }

    fn small_const(&mut self) -> u32 {
        self.rng.gen_range(0..256)
    }

    fn binop(&mut self) -> BinOp {
        let sig: u32 = self.profile.signature_ops.iter().map(|(_, w)| w).sum();
        let base: u32 = self.profile.op_weights.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..sig + base);
        for (op, w) in self
            .profile
            .signature_ops
            .iter()
            .chain(&self.profile.op_weights)
        {
            if roll < *w {
                return *op;
            }
            roll -= w;
        }
        BinOp::Add
    }

    fn cmp_kind(&mut self) -> CmpKind {
        const KINDS: [CmpKind; 8] = [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::LtS,
            CmpKind::GeS,
            CmpKind::GtS,
            CmpKind::LeS,
            CmpKind::LtU,
            CmpKind::GeU,
        ];
        KINDS[self.rng.gen_range(0..KINDS.len())]
    }

    fn width(&mut self) -> Width {
        match self.rng.gen_range(0..10) {
            0..=6 => Width::B32,
            7 | 8 => Width::B8,
            _ => Width::B16,
        }
    }

    /// Emits one ALU statement.
    fn alu(&mut self) {
        let op = self.binop();
        let dst = self.data_var();
        // Reverse-subtract form (`rsb`) occasionally.
        if op == BinOp::Sub && self.rng.gen_bool(0.15) {
            let b = self.data_var();
            let c = self.small_const();
            self.stmts.push(Stmt::Bin {
                dst,
                op,
                a: Rvalue::Const(c),
                b: Rvalue::Var(b),
            });
            return;
        }
        let a = if self.rng.gen_bool(self.profile.rmw_bias) {
            dst
        } else {
            self.data_var()
        };
        let b = match op {
            BinOp::Shl | BinOp::Shr | BinOp::Sar | BinOp::Ror => {
                Rvalue::Const(self.rng.gen_range(1..16))
            }
            _ if self.rng.gen_bool(self.profile.imm_bias) => Rvalue::Const(self.small_const()),
            _ => Rvalue::Var(self.data_var()),
        };
        self.stmts.push(Stmt::Bin {
            dst,
            op,
            a: Rvalue::Var(a),
            b,
        });
    }

    fn shifted(&mut self) {
        let kinds = [
            ShiftKind::Lsl,
            ShiftKind::Lsr,
            ShiftKind::Asr,
            ShiftKind::Ror,
        ];
        let ops = [BinOp::Add, BinOp::Sub, BinOp::And, BinOp::Or, BinOp::Xor];
        let dst = self.data_var();
        let a = self.data_var();
        let b = self.data_var();
        self.stmts.push(Stmt::BinShifted {
            dst,
            op: ops[self.rng.gen_range(0..ops.len())],
            a,
            b,
            shift: kinds[self.rng.gen_range(0..kinds.len())],
            amount: self.rng.gen_range(1..9),
        });
    }

    fn unary(&mut self) {
        let dst = self.data_var();
        match self.rng.gen_range(0..4) {
            0 => {
                let c = self.small_const();
                self.stmts.push(Stmt::Un {
                    dst,
                    op: UnOp::Mov,
                    a: Rvalue::Const(c),
                });
            }
            1 => {
                let a = self.data_var();
                self.stmts.push(Stmt::Un {
                    dst,
                    op: UnOp::Mov,
                    a: Rvalue::Var(a),
                });
            }
            2 => {
                let a = self.data_var();
                self.stmts.push(Stmt::Un {
                    dst,
                    op: UnOp::Not,
                    a: Rvalue::Var(a),
                });
            }
            _ => {
                let a = self.data_var();
                self.stmts.push(Stmt::Un {
                    dst,
                    op: UnOp::Neg,
                    a: Rvalue::Var(a),
                });
            }
        }
    }

    fn memory(&mut self) {
        let width = self.width();
        let offset = (self.rng.gen_range(0..(DATA_SIZE / 8)) & !3) as i32;
        if self.rng.gen_bool(0.12) {
            // Register-offset load with a masked index (keeps addresses
            // inside the data region).
            let idx = self.low_var();
            let dst = self.data_var();
            self.stmts.push(Stmt::Bin {
                dst: idx,
                op: BinOp::And,
                a: Rvalue::Var(idx),
                b: Rvalue::Const(0xfc),
            });
            self.stmts.push(Stmt::LoadIndexed {
                dst,
                base: BASE,
                index: idx,
            });
        } else if self.rng.gen_bool(0.5) {
            let dst = self.data_var();
            self.stmts.push(Stmt::Load {
                dst,
                base: BASE,
                offset,
                width,
            });
        } else {
            let src = self.data_var();
            self.stmts.push(Stmt::Store {
                src,
                base: BASE,
                offset,
                width,
            });
        }
    }

    /// A forward-branch `if` group.
    fn if_group(&mut self) {
        let l = self.label();
        let a = self.data_var();
        let cmp = self.cmp_kind();
        let c = self.small_const();
        self.stmts.push(Stmt::Branch {
            a,
            cmp,
            b: Rvalue::Const(c),
            target: l,
        });
        self.alu();
        if self.rng.gen_bool(0.4) {
            self.memory();
        }
        self.stmts.push(Stmt::Define { label: l });
    }

    /// A flag-coupled group: an S-fusable ALU statement immediately
    /// consumed by an equality branch (the `eors`/`subs` + `bne` idiom
    /// behind the paper's condition-flag delegation).
    fn flag_coupled(&mut self) {
        let l = self.label();
        let dst = self.data_var();
        let ops = [BinOp::Xor, BinOp::And, BinOp::Sub, BinOp::Add, BinOp::Or];
        let op = ops[self.rng.gen_range(0..ops.len())];
        let b = if self.rng.gen_bool(0.5) {
            Rvalue::Const(self.small_const())
        } else {
            Rvalue::Var(self.data_var())
        };
        self.stmts.push(Stmt::Bin {
            dst,
            op,
            a: Rvalue::Var(dst),
            b,
        });
        let cmp = if self.rng.gen_bool(0.5) {
            CmpKind::Ne
        } else {
            CmpKind::Eq
        };
        self.stmts.push(Stmt::Branch {
            a: dst,
            cmp,
            b: Rvalue::Const(0),
            target: l,
        });
        self.unary();
        self.stmts.push(Stmt::Define { label: l });
    }

    fn special(&mut self) {
        match self.rng.gen_range(0..3) {
            0 => {
                let dst = self.data_var();
                let (a, b, c) = (self.low_var(), self.low_var(), self.data_var());
                self.stmts.push(Stmt::MulAdd { dst, a, b, c });
            }
            1 => {
                let dst = self.data_var();
                let a = self.low_var();
                self.stmts.push(Stmt::Un {
                    dst,
                    op: UnOp::Clz,
                    a: Rvalue::Var(a),
                });
            }
            _ => {
                // Distinct fixed variables keep the 64-bit accumulate
                // well-formed.
                self.stmts.push(Stmt::WideMulAcc {
                    lo: Var(4),
                    hi: Var(5),
                    a: Var(2),
                    b: Var(3),
                });
            }
        }
    }

    /// Emits one statement or statement group from the profile mix.
    fn body_stmt(&mut self, callees: &[FuncId]) {
        let p = self.profile;
        let roll: f64 = self.rng.gen();
        let mut acc = p.call_ratio;
        if roll < acc && !callees.is_empty() {
            let f = callees[self.rng.gen_range(0..callees.len())];
            self.stmts.push(Stmt::Call { func: f });
            return;
        }
        acc += p.if_ratio;
        if roll < acc {
            self.if_group();
            return;
        }
        acc += p.flag_coupled_ratio;
        if roll < acc {
            self.flag_coupled();
            return;
        }
        acc += p.mem_ratio;
        if roll < acc {
            self.memory();
            return;
        }
        acc += p.shifted_ratio;
        if roll < acc {
            self.shifted();
            return;
        }
        acc += p.unary_ratio;
        if roll < acc {
            self.unary();
            return;
        }
        acc += p.special_ratio;
        if roll < acc {
            self.special();
            return;
        }
        self.alu();
    }

    /// Prologue statements: materialize the data base pointer and seed
    /// the data variables.
    fn init(&mut self) {
        self.stmts.push(Stmt::Un {
            dst: BASE,
            op: UnOp::Mov,
            a: Rvalue::Const(DATA_BASE >> 12),
        });
        self.stmts.push(Stmt::Bin {
            dst: BASE,
            op: BinOp::Shl,
            a: Rvalue::Var(BASE),
            b: Rvalue::Const(12),
        });
        for i in 2..8 {
            let c = self.small_const().max(1);
            self.stmts.push(Stmt::Un {
                dst: Var(i),
                op: UnOp::Mov,
                a: Rvalue::Const(c),
            });
        }
    }

    /// A counted loop around `body_count` sampled statements.
    fn counted_loop(&mut self, iters: u32, body_count: usize, callees: &[FuncId]) {
        let l = self.label();
        self.stmts.push(Stmt::Un {
            dst: COUNTER,
            op: UnOp::Mov,
            a: Rvalue::Const(iters),
        });
        self.stmts.push(Stmt::Define { label: l });
        for _ in 0..body_count {
            self.body_stmt(callees);
        }
        self.stmts.push(Stmt::Bin {
            dst: COUNTER,
            op: BinOp::Sub,
            a: Rvalue::Var(COUNTER),
            b: Rvalue::Const(1),
        });
        self.stmts.push(Stmt::Branch {
            a: COUNTER,
            cmp: CmpKind::Ne,
            b: Rvalue::Const(0),
            target: l,
        });
    }
}

/// Generates a benchmark's source program: entry function 0 plus hot and
/// cold functions, totalling roughly `statement_budget` statements.
#[must_use]
pub fn generate(profile: &Profile, statement_budget: usize, rng: &mut StdRng) -> SourceProgram {
    let n_hot = 2 + (statement_budget / 150).min(3);
    let n_cold = 1 + (statement_budget / 120).min(6);
    let n_funcs = 1 + n_hot + n_cold;
    let per_func = (statement_budget / n_funcs).max(8);

    let mut functions = Vec::with_capacity(n_funcs);

    // Hot functions come right after the entry (ids 1..=n_hot).
    let hot_ids: Vec<FuncId> = (1..=n_hot).map(|i| FuncId(i as u16)).collect();
    let cold_ids: Vec<FuncId> = (n_hot + 1..n_funcs).map(|i| FuncId(i as u16)).collect();

    // Entry: init, outer loop over hot calls, outputs, exit.
    {
        let mut g = Gen {
            rng,
            profile,
            next_label: 0,
            stmts: Vec::new(),
        };
        g.init();
        let outer = g.label();
        g.stmts.push(Stmt::Un {
            dst: COUNTER,
            op: UnOp::Mov,
            a: Rvalue::Const(profile.outer_iters),
        });
        g.stmts.push(Stmt::Define { label: outer });
        for f in &hot_ids {
            g.stmts.push(Stmt::Call { func: *f });
        }
        if let Some(f) = cold_ids.first() {
            g.stmts.push(Stmt::Call { func: *f });
        }
        g.stmts.push(Stmt::Bin {
            dst: COUNTER,
            op: BinOp::Sub,
            a: Rvalue::Var(COUNTER),
            b: Rvalue::Const(1),
        });
        g.stmts.push(Stmt::Branch {
            a: COUNTER,
            cmp: CmpKind::Ne,
            b: Rvalue::Const(0),
            target: outer,
        });
        g.stmts.push(Stmt::Output { a: Var(2) });
        g.stmts.push(Stmt::Output { a: Var(3) });
        g.stmts.push(Stmt::Return);
        functions.push(Function {
            name: "main".into(),
            stmts: g.stmts,
            n_vars: 8,
        });
    }

    // Hot functions: a counted inner loop dominates.
    for (i, _) in hot_ids.iter().enumerate() {
        let mut g = Gen {
            rng,
            profile,
            next_label: 0,
            stmts: Vec::new(),
        };
        g.init();
        let body = (per_func.saturating_sub(14)).clamp(4, 40);
        g.counted_loop(profile.hot_loop_iters, body, &[]);
        g.stmts.push(Stmt::Store {
            src: Var(2),
            base: BASE,
            offset: (i as i32) * 4,
            width: Width::B32,
        });
        g.stmts.push(Stmt::Return);
        functions.push(Function {
            name: format!("hot{i}"),
            stmts: g.stmts,
            n_vars: 8,
        });
    }

    // Cold functions: straight-line statements, occasionally calling a
    // deeper cold function (no recursion: only higher ids).
    for (i, id) in cold_ids.iter().enumerate() {
        let mut g = Gen {
            rng,
            profile,
            next_label: 0,
            stmts: Vec::new(),
        };
        g.init();
        let deeper: Vec<FuncId> = cold_ids.iter().copied().filter(|f| f.0 > id.0).collect();
        for _ in 0..per_func {
            g.body_stmt(&deeper);
        }
        g.stmts.push(Stmt::Return);
        functions.push(Function {
            name: format!("cold{i}"),
            stmts: g.stmts,
            n_vars: 8,
        });
    }

    SourceProgram { functions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Benchmark, Scale};
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic() {
        let p = Benchmark::Mcf.profile();
        let a = generate(&p, 60, &mut StdRng::seed_from_u64(1));
        let b = generate(&p, 60, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
        let c = generate(&p, 60, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_compile_and_terminate() {
        for b in [Benchmark::Mcf, Benchmark::Libquantum, Benchmark::H264ref] {
            let p = b.profile();
            let mut rng = StdRng::seed_from_u64(b.seed());
            let src = generate(&p, Scale::tiny().statements(b), &mut rng);
            let pair =
                pdbt_compiler::compile_pair(&src, 0x1000).unwrap_or_else(|e| panic!("{b}: {e}"));
            let mut cpu = pdbt_isa_arm::Cpu::new();
            cpu.mem.map(DATA_BASE, DATA_SIZE);
            cpu.mem.map(STACK_BASE, STACK_SIZE);
            cpu.write(pdbt_isa_arm::Reg::Sp, STACK_BASE + STACK_SIZE);
            let stats = pdbt_isa_arm::run(&mut cpu, &pair.guest.program, 20_000_000)
                .unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(
                stats.executed > 1_000,
                "{b}: ran {} instructions",
                stats.executed
            );
            assert_eq!(cpu.output.len(), 2, "{b}: entry outputs two accumulators");
        }
    }

    #[test]
    fn statement_budget_is_roughly_respected() {
        let p = Benchmark::Gcc.profile();
        let mut rng = StdRng::seed_from_u64(3);
        let src = generate(&p, 400, &mut rng);
        let n = src.statement_count();
        assert!((200..=800).contains(&n), "got {n}");
    }

    #[test]
    fn hot_loops_dominate_execution() {
        // The paper's <5%-of-statements-execute observation: dynamic
        // instruction count greatly exceeds static size.
        let b = Benchmark::Hmmer;
        let p = b.profile();
        let mut rng = StdRng::seed_from_u64(b.seed());
        let src = generate(&p, Scale::tiny().statements(b), &mut rng);
        let pair = pdbt_compiler::compile_pair(&src, 0x1000).unwrap();
        let static_len = pair.guest.program.len() as u64;
        let mut cpu = pdbt_isa_arm::Cpu::new();
        cpu.mem.map(DATA_BASE, DATA_SIZE);
        cpu.mem.map(STACK_BASE, STACK_SIZE);
        cpu.write(pdbt_isa_arm::Reg::Sp, STACK_BASE + STACK_SIZE);
        let stats = pdbt_isa_arm::run(&mut cpu, &pair.guest.program, 20_000_000).unwrap();
        assert!(
            stats.executed > static_len * 10,
            "dynamic {} vs static {static_len}",
            stats.executed
        );
    }
}
