//! The synthetic SPEC CINT 2006 suite and training protocol.
//!
//! Twelve deterministic benchmarks named after the paper's suite, each
//! generated from a per-benchmark [`Profile`] preserving the workload
//! dimensions the experiments measure. The training protocol matches
//! §V-A: leave-one-out — "the rules learned from the other 11
//! benchmarks are applied to the 12th".
//!
//! # Example
//!
//! ```no_run
//! use pdbt_workloads::{train_excluding, Benchmark, Scale};
//!
//! let suite = pdbt_workloads::suite(Scale::tiny());
//! let rules = train_excluding(&suite, Benchmark::Mcf, Default::default());
//! let target = suite.iter().find(|w| w.bench == Benchmark::Mcf).unwrap();
//! let report = pdbt_workloads::run_dbt(target, Some(rules), true).unwrap();
//! println!("coverage: {:.1}%", report.metrics.coverage() * 100.0);
//! ```

mod gen;
mod profile;

pub use gen::{generate, DATA_BASE, DATA_SIZE, STACK_BASE, STACK_SIZE};
pub use profile::{Benchmark, Profile, Scale};

use pdbt_compiler::{CompiledPair, DebugEntry};
use pdbt_core::learning::{learn_into, FunnelStats, LearnConfig};
use pdbt_core::RuleSet;
use pdbt_runtime::{Engine, EngineConfig, EngineError, Report, RunSetup};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A built benchmark: compiled images, (degraded) debug map, run setup.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub bench: Benchmark,
    /// The compiled guest/host pair.
    pub pair: CompiledPair,
    /// The degraded (line-table-realistic) debug map used for learning.
    pub debug: Vec<DebugEntry>,
    /// Statement count of the source program.
    pub statements: usize,
}

impl Workload {
    /// The run setup (memory layout, budget) for this workload.
    #[must_use]
    pub fn setup(&self) -> RunSetup {
        let mut s = RunSetup::basic(DATA_BASE, DATA_SIZE, STACK_BASE, STACK_SIZE);
        s.max_guest = 100_000_000;
        s
    }
}

/// Builds one benchmark at the given scale (deterministic).
#[must_use]
pub fn build(bench: Benchmark, scale: Scale) -> Workload {
    let profile = bench.profile();
    let mut rng = StdRng::seed_from_u64(bench.seed());
    let src = generate(&profile, scale.statements(bench), &mut rng);
    let pair = pdbt_compiler::compile_pair(&src, 0x1000).expect("generated programs compile");
    let accurate = pdbt_compiler::build_debug_map(&pair.guest, &pair.host);
    let debug = pdbt_compiler::degrade(&accurate, profile.degrade, &mut rng);
    Workload {
        bench,
        pair,
        debug,
        statements: src.statement_count(),
    }
}

/// Builds the whole suite.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Workload> {
    Benchmark::ALL.iter().map(|b| build(*b, scale)).collect()
}

/// Learns rules from every workload except `exclude` (the paper's
/// leave-one-out protocol, §V-A). Returns the merged learned rule set.
#[must_use]
pub fn train_excluding(suite: &[Workload], exclude: Benchmark, cfg: LearnConfig) -> RuleSet {
    let mut rules = RuleSet::new();
    for w in suite.iter().filter(|w| w.bench != exclude) {
        learn_into(&mut rules, &w.pair, &w.debug, cfg);
    }
    rules
}

/// Learns rules from an explicit training subset, also returning the
/// per-benchmark funnel statistics (Table I / Fig 2 inputs).
#[must_use]
pub fn train_with_stats(
    training: &[&Workload],
    cfg: LearnConfig,
) -> (RuleSet, Vec<(Benchmark, FunnelStats)>) {
    let mut rules = RuleSet::new();
    let mut stats = Vec::new();
    for w in training {
        let s = learn_into(&mut rules, &w.pair, &w.debug, cfg);
        stats.push((w.bench, s));
    }
    (rules, stats)
}

/// Runs a workload under the DBT with the given rules and delegation
/// setting, returning the report.
///
/// # Errors
///
/// Forwarded engine errors.
pub fn run_dbt(
    w: &Workload,
    rules: Option<RuleSet>,
    flag_delegation: bool,
) -> Result<Report, EngineError> {
    let mut cfg = EngineConfig::default();
    cfg.translate.flag_delegation = flag_delegation;
    let mut engine = Engine::new(rules, cfg);
    engine.run(&w.pair.guest.program, &w.setup())
}

/// Runs a workload on the reference interpreter, returning its output
/// (the correctness oracle for every DBT configuration).
///
/// # Errors
///
/// Forwarded interpreter errors.
pub fn run_reference(w: &Workload) -> Result<Vec<u32>, pdbt_isa::ExecError> {
    let mut cpu = pdbt_isa_arm::Cpu::new();
    cpu.mem.map(DATA_BASE, DATA_SIZE);
    cpu.mem.map(STACK_BASE, STACK_SIZE);
    cpu.write(pdbt_isa_arm::Reg::Sp, STACK_BASE + STACK_SIZE);
    pdbt_isa_arm::run(&mut cpu, &w.pair.guest.program, 100_000_000)?;
    Ok(cpu.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_core::derive::{derive, DeriveConfig};
    use pdbt_symexec::CheckOptions;

    #[test]
    fn workloads_are_deterministic() {
        let a = build(Benchmark::Astar, Scale::tiny());
        let b = build(Benchmark::Astar, Scale::tiny());
        assert_eq!(a.pair.guest.program.insts(), b.pair.guest.program.insts());
        assert_eq!(a.debug, b.debug);
    }

    #[test]
    fn funnel_shape_matches_table1() {
        // statements > candidates > learned > unique, with candidate
        // yield broadly around the paper's 54%.
        let w = build(Benchmark::Sjeng, Scale::tiny());
        let (_, stats) = train_with_stats(&[&w], LearnConfig::default());
        let s = &stats[0].1;
        assert!(s.candidates < s.statements, "{s:?}");
        assert!(s.learned < s.candidates, "{s:?}");
        assert!(s.unique <= s.learned, "{s:?}");
        assert!(s.unique > 0, "{s:?}");
        let yield_ratio = s.candidates as f64 / s.statements as f64;
        assert!(
            (0.3..0.85).contains(&yield_ratio),
            "candidate yield {yield_ratio}"
        );
    }

    #[test]
    fn leave_one_out_end_to_end_mcf() {
        // Small-scale version of the paper's protocol on the smallest
        // benchmark: train on the others, run mcf under every config,
        // check correctness and the coverage/performance ordering.
        let scale = Scale::tiny();
        // A 3-benchmark training set keeps this test quick; the full
        // protocol runs in the bench harness.
        let training: Vec<Workload> = [Benchmark::Sjeng, Benchmark::Bzip2, Benchmark::Hmmer]
            .iter()
            .map(|b| build(*b, scale))
            .collect();
        let refs: Vec<&Workload> = training.iter().collect();
        let (learned, _) = train_with_stats(&refs, LearnConfig::default());
        assert!(learned.len() > 10, "learned {} rules", learned.len());
        let (full, dstats) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        assert!(dstats.instantiated > dstats.learned * 5, "{dstats:?}");

        let target = build(Benchmark::Mcf, scale);
        let golden = run_reference(&target).unwrap();
        assert!(!golden.is_empty());

        let qemu = run_dbt(&target, None, true).unwrap();
        assert_eq!(qemu.output, golden, "qemu config wrong");

        let base = run_dbt(&target, Some(learned), false).unwrap();
        assert_eq!(base.output, golden, "learned config wrong");

        let para = run_dbt(&target, Some(full), true).unwrap();
        assert_eq!(para.output, golden, "parameterized config wrong");

        // Shape: coverage and instruction-ratio orderings.
        assert!(
            base.metrics.coverage() > 0.10,
            "{}",
            base.metrics.coverage()
        );
        assert!(
            para.metrics.coverage() > base.metrics.coverage() + 0.05,
            "para {} vs base {}",
            para.metrics.coverage(),
            base.metrics.coverage()
        );
        assert!(para.metrics.host_executed() < qemu.metrics.host_executed());
    }
}
