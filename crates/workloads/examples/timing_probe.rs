use pdbt_core::derive::{derive, DeriveConfig};
use pdbt_core::learning::LearnConfig;
use pdbt_symexec::CheckOptions;
use pdbt_workloads::*;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let suite = suite(Scale::full());
    println!("build suite: {:?}", t0.elapsed());
    let total: usize = suite.iter().map(|w| w.statements).sum();
    println!("total statements: {total}");
    let t = Instant::now();
    let rules = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
    println!(
        "train 11 benchmarks: {:?}, {} unique rules",
        t.elapsed(),
        rules.len()
    );
    let t = Instant::now();
    let (full, stats) = derive(&rules, DeriveConfig::full(), CheckOptions::default());
    println!("derive full: {:?}, stats {:?}", t.elapsed(), stats);
    let t = Instant::now();
    let target = suite.iter().find(|w| w.bench == Benchmark::Mcf).unwrap();
    let r = run_dbt(target, Some(full), true).unwrap();
    println!(
        "run mcf para: {:?}, guest {} coverage {:.3} ratio {:.2}",
        t.elapsed(),
        r.metrics.guest_retired,
        r.metrics.coverage(),
        r.metrics.total_ratio()
    );
    let t = Instant::now();
    let q = run_dbt(target, None, true).unwrap();
    println!(
        "run mcf qemu: {:?}, ratio {:.2} speedup {:.2}",
        t.elapsed(),
        q.metrics.total_ratio(),
        q.metrics.host_executed() as f64 / r.metrics.host_executed() as f64
    );
}
