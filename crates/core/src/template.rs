//! Host-code templates: the host side of a rule with registers and
//! immediates abstracted into slots.
//!
//! A learned rule's host sequence is converted into a template by
//! replacing mapped host registers with *slots*, scratch registers with
//! scratch markers, and immediates that match guest immediates with
//! *immediate slots*. Auxiliary instructions (the paper's Fig 6 `movl`)
//! survive verbatim as scratch-register operations. Instantiation
//! substitutes concrete host locations — a cached host register or an
//! in-environment memory slot — and legalizes the result (mem-mem
//! operand fixes, address materialization).

use pdbt_isa_x86::{Cc, Inst as HInst, Mem, Op as HOp, Operand as HOperand, Reg as HReg};
use std::fmt;

/// A template register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TReg {
    /// Rule parameter slot `i`.
    Slot(u8),
    /// Scratch register (`0` = `eax`, `1` = `edx`).
    Scratch(u8),
}

/// A template immediate reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TImm {
    /// Guest immediate slot `j`.
    Slot(u8),
    /// A fixed constant baked into the rule.
    Fixed(i32),
}

/// A template memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TMem {
    /// Base register.
    pub base: Option<TReg>,
    /// Index register.
    pub index: Option<TReg>,
    /// Displacement.
    pub disp: TImm,
}

/// A template operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TOperand {
    /// A register reference.
    Reg(TReg),
    /// An immediate reference.
    Imm(TImm),
    /// A memory reference.
    Mem(TMem),
}

/// One template instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateInst {
    /// The host opcode.
    pub op: HOp,
    /// Condition for `setcc`.
    pub cc: Option<Cc>,
    /// Operands.
    pub operands: Vec<TOperand>,
}

impl fmt::Display for TemplateInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(cc) = self.cc {
            write!(f, "{cc}")?;
        }
        for (i, o) in self.operands.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            match o {
                TOperand::Reg(TReg::Slot(s)) => write!(f, "{sep}S{s}")?,
                TOperand::Reg(TReg::Scratch(0)) => write!(f, "{sep}eax")?,
                TOperand::Reg(TReg::Scratch(_)) => write!(f, "{sep}edx")?,
                TOperand::Imm(TImm::Slot(j)) => write!(f, "{sep}$I{j}")?,
                TOperand::Imm(TImm::Fixed(v)) => write!(f, "{sep}${v}")?,
                TOperand::Mem(m) => {
                    write!(f, "{sep}[")?;
                    match m.base {
                        Some(TReg::Slot(s)) => write!(f, "S{s}")?,
                        Some(TReg::Scratch(0)) => write!(f, "eax")?,
                        Some(TReg::Scratch(_)) => write!(f, "edx")?,
                        None => {}
                    }
                    if let Some(TReg::Slot(s)) = m.index {
                        write!(f, "+S{s}")?;
                    }
                    match m.disp {
                        TImm::Slot(j) => write!(f, "+I{j}")?,
                        TImm::Fixed(0) => {}
                        TImm::Fixed(v) => write!(f, "{v:+}")?,
                    }
                    write!(f, "]")?;
                }
            }
        }
        Ok(())
    }
}

/// A whole host template.
pub type Template = Vec<TemplateInst>;

/// Where a rule parameter lives at instantiation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostLoc {
    /// Cached in a host register.
    Reg(HReg),
    /// In memory (an environment slot addressed off `ebp`).
    Mem(Mem),
}

/// An error raised while extracting or instantiating a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template error: {}", self.detail)
    }
}

impl std::error::Error for TemplateError {}

fn terr<T>(detail: impl Into<String>) -> Result<T, TemplateError> {
    Err(TemplateError {
        detail: detail.into(),
    })
}

const SCRATCH: [HReg; 2] = [HReg::Eax, HReg::Edx];

fn treg_of(r: HReg, slot_of: &dyn Fn(HReg) -> Option<u8>) -> Result<TReg, TemplateError> {
    if let Some(i) = slot_of(r) {
        return Ok(TReg::Slot(i));
    }
    if let Some(k) = SCRATCH.iter().position(|s| *s == r) {
        return Ok(TReg::Scratch(k as u8));
    }
    terr(format!("host register {r} is neither a slot nor scratch"))
}

fn timm_of(v: i32, guest_imms: &[u32]) -> TImm {
    match guest_imms.iter().position(|g| *g as i32 == v) {
        Some(j) => TImm::Slot(j as u8),
        None => TImm::Fixed(v),
    }
}

/// Extracts a template from a learned rule's host sequence.
///
/// `slot_of` maps a host register to its rule-parameter slot (from the
/// verified mapping); `guest_imms` are the guest instruction's immediate
/// slot values (matched by value).
///
/// # Errors
///
/// [`TemplateError`] when the host code references registers outside the
/// mapping and scratch set (e.g. frame slots off `ebp`) or contains
/// control flow — such candidates are not templatable, one of the
/// verification-strictness losses of §II-B.
pub fn extract(
    host: &[HInst],
    slot_of: &dyn Fn(HReg) -> Option<u8>,
    guest_imms: &[u32],
) -> Result<Template, TemplateError> {
    let mut out = Vec::with_capacity(host.len());
    for inst in host {
        if matches!(
            inst.op,
            HOp::Jmp | HOp::Jcc | HOp::Call | HOp::Ret | HOp::Hlt | HOp::Push | HOp::Pop
        ) {
            return terr(format!("control flow or stack op `{inst}` in host code"));
        }
        let mut operands = Vec::with_capacity(inst.operands.len());
        for o in &inst.operands {
            let t = match o {
                HOperand::Reg(r) => TOperand::Reg(treg_of(*r, slot_of)?),
                HOperand::Imm(v) => TOperand::Imm(timm_of(*v, guest_imms)),
                HOperand::Mem(m) => {
                    let base = m.base.map(|r| treg_of(r, slot_of)).transpose()?;
                    let index = m.index.map(|r| treg_of(r, slot_of)).transpose()?;
                    TOperand::Mem(TMem {
                        base,
                        index,
                        disp: timm_of(m.disp, guest_imms),
                    })
                }
                HOperand::Xmm(_) => return terr("float operands are not templated"),
                HOperand::Target(_) => return terr("branch target in host code"),
            };
            operands.push(t);
        }
        out.push(TemplateInst {
            op: inst.op,
            cc: inst.cc,
            operands,
        });
    }
    Ok(out)
}

/// Instantiation context: resolves slots to concrete host locations.
struct Resolver<'a> {
    locs: &'a [HostLoc],
    imms: &'a [u32],
    /// Instructions emitted ahead of the current one (materializations).
    out: Vec<HInst>,
}

impl Resolver<'_> {
    fn imm(&self, t: TImm) -> Result<i32, TemplateError> {
        match t {
            TImm::Fixed(v) => Ok(v),
            TImm::Slot(j) => {
                self.imms
                    .get(j as usize)
                    .map(|v| *v as i32)
                    .ok_or_else(|| TemplateError {
                        detail: format!("missing imm slot {j}"),
                    })
            }
        }
    }

    fn reg_operand(&self, t: TReg) -> Result<HOperand, TemplateError> {
        Ok(match t {
            TReg::Scratch(k) => HOperand::Reg(SCRATCH[k as usize % 2]),
            TReg::Slot(i) => match self.locs.get(i as usize) {
                Some(HostLoc::Reg(r)) => HOperand::Reg(*r),
                Some(HostLoc::Mem(m)) => HOperand::Mem(*m),
                None => return terr(format!("missing slot {i}")),
            },
        })
    }

    /// Resolves a template register to a *register*, materializing an
    /// in-memory slot through `scratch` if needed.
    fn reg_strict(&mut self, t: TReg, scratch: HReg) -> Result<HReg, TemplateError> {
        match self.reg_operand(t)? {
            HOperand::Reg(r) => Ok(r),
            HOperand::Mem(m) => {
                self.out.push(pdbt_isa_x86::builders::mov(
                    HOperand::Reg(scratch),
                    HOperand::Mem(m),
                ));
                Ok(scratch)
            }
            _ => unreachable!(),
        }
    }

    fn operand(&mut self, t: &TOperand) -> Result<HOperand, TemplateError> {
        Ok(match t {
            TOperand::Reg(r) => self.reg_operand(*r)?,
            TOperand::Imm(i) => HOperand::Imm(self.imm(*i)?),
            TOperand::Mem(m) => {
                let base = match m.base {
                    Some(r) => Some(self.reg_strict(r, HReg::Edx)?),
                    None => None,
                };
                let index = match m.index {
                    Some(r) => Some(self.reg_strict(r, HReg::Eax)?),
                    None => None,
                };
                HOperand::Mem(Mem {
                    base,
                    index,
                    disp: self.imm(m.disp)?,
                })
            }
        })
    }
}

/// Instantiates a template with concrete parameter locations and
/// immediate values, legalizing mem-mem operand pairs and materializing
/// memory-resident address bases. This is the paper's "matched rule
/// instantiation" step (§IV-D).
///
/// # Errors
///
/// [`TemplateError`] on arity mismatches.
pub fn instantiate(
    template: &Template,
    locs: &[HostLoc],
    imms: &[u32],
) -> Result<Vec<HInst>, TemplateError> {
    use pdbt_isa_x86::builders as hb;
    let mut out: Vec<HInst> = Vec::with_capacity(template.len());
    for t in template {
        let mut r = Resolver {
            locs,
            imms,
            out: Vec::new(),
        };
        let mut operands: Vec<HOperand> = t
            .operands
            .iter()
            .map(|o| r.operand(o))
            .collect::<Result<_, _>>()?;
        out.append(&mut r.out);
        // Legalize two-memory-operand combinations: load the source into
        // a scratch register first. Template-derived code never keeps a
        // live value in the chosen scratch across this boundary (see the
        // crate tests that enforce it).
        if operands.len() == 2
            && matches!(operands[0], HOperand::Mem(_))
            && matches!(operands[1], HOperand::Mem(_))
            // Narrow moves have their own width-correct fixes below.
            && !matches!(t.op, HOp::MovB | HOp::MovW | HOp::MovzxB | HOp::MovzxW)
        {
            let uses_eax = t.operands.iter().any(|o| {
                matches!(o, TOperand::Reg(TReg::Scratch(0)))
                    || matches!(
                        o,
                        TOperand::Mem(TMem {
                            base: Some(TReg::Scratch(0)),
                            ..
                        })
                    )
            });
            let scratch = if uses_eax { HReg::Edx } else { HReg::Eax };
            out.push(hb::mov(HOperand::Reg(scratch), operands[1]));
            operands[1] = HOperand::Reg(scratch);
        }
        // Narrow stores need a register source.
        if matches!(t.op, HOp::MovB | HOp::MovW) && !matches!(operands[1], HOperand::Reg(_)) {
            out.push(hb::mov(HOperand::Reg(HReg::Eax), operands[1]));
            operands[1] = HOperand::Reg(HReg::Eax);
        }
        // Zero-extending loads need a register destination.
        if matches!(t.op, HOp::MovzxB | HOp::MovzxW) && !matches!(operands[0], HOperand::Reg(_)) {
            let final_dst = operands[0];
            operands[0] = HOperand::Reg(HReg::Eax);
            let inst = HInst {
                op: t.op,
                cc: t.cc,
                operands,
            };
            inst.validate().map_err(|e| TemplateError {
                detail: e.to_string(),
            })?;
            out.push(inst);
            out.push(hb::mov(final_dst, HOperand::Reg(HReg::Eax)));
            continue;
        }
        let inst = HInst {
            op: t.op,
            cc: t.cc,
            operands,
        };
        inst.validate().map_err(|e| TemplateError {
            detail: e.to_string(),
        })?;
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_x86::builders as hb;

    fn slot_map(pairs: &[(HReg, u8)]) -> impl Fn(HReg) -> Option<u8> + '_ {
        move |r| pairs.iter().find(|(h, _)| *h == r).map(|(_, i)| *i)
    }

    #[test]
    fn extract_basic_rmw() {
        // addl ecx, $5 with r0↔ecx and guest imm [5].
        let host = [hb::add(HReg::Ecx.into(), HOperand::Imm(5))];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0)]), &[5]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].operands[0], TOperand::Reg(TReg::Slot(0)));
        assert_eq!(t[0].operands[1], TOperand::Imm(TImm::Slot(0)));
    }

    #[test]
    fn extract_keeps_aux_scratch() {
        // movl eax, ebx; addl eax, esi; movl ecx, eax (Fig 6 shape).
        let host = [
            hb::mov(HReg::Eax.into(), HReg::Ebx.into()),
            hb::add(HReg::Eax.into(), HReg::Esi.into()),
            hb::mov(HReg::Ecx.into(), HReg::Eax.into()),
        ];
        let t = extract(
            &host,
            &slot_map(&[(HReg::Ecx, 0), (HReg::Ebx, 1), (HReg::Esi, 2)]),
            &[],
        )
        .unwrap();
        assert_eq!(t[0].operands[0], TOperand::Reg(TReg::Scratch(0)));
        assert_eq!(t[2].operands[1], TOperand::Reg(TReg::Scratch(0)));
    }

    #[test]
    fn extract_rejects_frame_slots_and_control() {
        let host = [hb::mov(
            HReg::Ecx.into(),
            Mem::base_disp(HReg::Ebp, -8).into(),
        )];
        assert!(extract(&host, &slot_map(&[(HReg::Ecx, 0)]), &[]).is_err());
        let host = [hb::ret()];
        assert!(extract(&host, &slot_map(&[]), &[]).is_err());
        let host = [hb::jcc(Cc::E, 1)];
        assert!(extract(&host, &slot_map(&[]), &[]).is_err());
    }

    #[test]
    fn unmatched_imm_stays_fixed() {
        let host = [hb::add(HReg::Ecx.into(), HOperand::Imm(99))];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0)]), &[5]).unwrap();
        assert_eq!(t[0].operands[1], TOperand::Imm(TImm::Fixed(99)));
    }

    #[test]
    fn instantiate_with_registers() {
        let host = [hb::add(HReg::Ecx.into(), HOperand::Imm(5))];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0)]), &[5]).unwrap();
        let insts = instantiate(&t, &[HostLoc::Reg(HReg::Edi)], &[123]).unwrap();
        assert_eq!(insts, vec![hb::add(HReg::Edi.into(), HOperand::Imm(123))]);
    }

    #[test]
    fn instantiate_with_env_slot() {
        // Slot in memory: addl [ebp+12], $7 is directly legal.
        let host = [hb::add(HReg::Ecx.into(), HOperand::Imm(5))];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0)]), &[5]).unwrap();
        let env = Mem::base_disp(HReg::Ebp, 12);
        let insts = instantiate(&t, &[HostLoc::Mem(env)], &[7]).unwrap();
        assert_eq!(insts, vec![hb::add(env.into(), HOperand::Imm(7))]);
    }

    #[test]
    fn instantiate_legalizes_mem_mem() {
        // addl S0, S1 with both slots in memory needs a scratch load.
        let host = [hb::add(HReg::Ecx.into(), HReg::Ebx.into())];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0), (HReg::Ebx, 1)]), &[]).unwrap();
        let m0 = Mem::base_disp(HReg::Ebp, 0);
        let m1 = Mem::base_disp(HReg::Ebp, 4);
        let insts = instantiate(&t, &[HostLoc::Mem(m0), HostLoc::Mem(m1)], &[]).unwrap();
        assert_eq!(
            insts,
            vec![
                hb::mov(HReg::Eax.into(), m1.into()),
                hb::add(m0.into(), HReg::Eax.into())
            ]
        );
    }

    #[test]
    fn instantiate_materializes_memory_base() {
        // movl S0, [S1 + 8] with the base slot living in the environment.
        let host = [hb::mov(
            HReg::Ecx.into(),
            Mem::base_disp(HReg::Ebx, 8).into(),
        )];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0), (HReg::Ebx, 1)]), &[8]).unwrap();
        let env = Mem::base_disp(HReg::Ebp, 20);
        let insts = instantiate(&t, &[HostLoc::Reg(HReg::Esi), HostLoc::Mem(env)], &[32]).unwrap();
        assert_eq!(
            insts,
            vec![
                hb::mov(HReg::Edx.into(), env.into()),
                hb::mov(HReg::Esi.into(), Mem::base_disp(HReg::Edx, 32).into()),
            ]
        );
    }

    #[test]
    fn instantiate_narrow_store_needs_register_source() {
        // movb [S1], S0 with the value slot in the environment.
        let host = [hb::movb(Mem::base(HReg::Ebx).into(), HReg::Ecx.into())];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0), (HReg::Ebx, 1)]), &[]).unwrap();
        let env = Mem::base_disp(HReg::Ebp, 24);
        let insts = instantiate(&t, &[HostLoc::Mem(env), HostLoc::Reg(HReg::Esi)], &[]).unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0], hb::mov(HReg::Eax.into(), env.into()));
        assert_eq!(insts[1].op, HOp::MovB);
    }

    #[test]
    fn instantiate_zero_extend_to_env_destination() {
        let host = [hb::movzxb(HReg::Ecx.into(), Mem::base(HReg::Ebx).into())];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0), (HReg::Ebx, 1)]), &[]).unwrap();
        let env = Mem::base_disp(HReg::Ebp, 28);
        let insts = instantiate(&t, &[HostLoc::Mem(env), HostLoc::Reg(HReg::Esi)], &[]).unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].op, HOp::MovzxB);
        assert_eq!(insts[1], hb::mov(env.into(), HReg::Eax.into()));
    }

    #[test]
    fn template_display_is_readable() {
        let host = [
            hb::mov(HReg::Eax.into(), HReg::Ebx.into()),
            hb::add(HReg::Eax.into(), HOperand::Imm(5)),
            hb::mov(HReg::Ecx.into(), HReg::Eax.into()),
        ];
        let t = extract(&host, &slot_map(&[(HReg::Ecx, 0), (HReg::Ebx, 1)]), &[5]).unwrap();
        let text: Vec<String> = t.iter().map(|i| i.to_string()).collect();
        assert_eq!(text, vec!["movl eax, S1", "addl eax, $I0", "movl S0, eax"]);
    }
}
