//! The translation-rule store: a hash table from combo keys to verified
//! host templates, with the canonical verification harness used by both
//! the learning pipeline and the parameterization engine.
//!
//! "A hash algorithm is used to retrieve the translation rules from a
//! hash table. The matched rule will then be instantiated to generate
//! host instructions" (paper §V-A).

use crate::key::{self, ComboKey, Instantiation, ModeTag, Parameterized};
use crate::template::{instantiate, HostLoc, Template};
use pdbt_isa::Flag;
use pdbt_isa_arm::{Inst as GInst, Op as GOpc, Reg as GReg};
use pdbt_isa_x86::{Inst as HInst, Reg as HReg};
use pdbt_symexec::{check, CheckOptions, FlagEquiv, Mapping, Verdict};
use std::collections::HashMap;

/// How a rule entered the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Verified directly from a training candidate.
    Learned,
    /// Derived by opcode parameterization (paper §IV-B dimension 1).
    OpcodeDerived,
    /// Derived by addressing-mode parameterization (dimension 2).
    AddrModeDerived,
}

/// A verified translation rule for one combo key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleEntry {
    /// The host template.
    pub template: Template,
    /// Per-flag relationship for the flags the guest combo defines
    /// (drives condition-flag delegation, §IV-D).
    pub flags: Vec<(Flag, FlagEquiv)>,
    /// Where the rule came from.
    pub provenance: Provenance,
    /// When set, the rule only applies to these exact immediate values
    /// (immediate generalization failed re-verification).
    pub imm_constraint: Option<Vec<u32>>,
}

impl RuleEntry {
    /// The relationship recorded for flag `f`, if any.
    #[must_use]
    pub fn flag_equiv(&self, f: Flag) -> Option<FlagEquiv> {
        self.flags.iter().find(|(ff, _)| *ff == f).map(|(_, e)| *e)
    }
}

/// The canonical guest registers used for verification instances.
#[must_use]
pub fn canonical_guest_slots(n: usize) -> Vec<GReg> {
    (0..n)
        .map(|i| GReg::from_index(4 + i).expect("canonical guest slot"))
        .collect()
}

/// The canonical host registers used for verification instances.
#[must_use]
pub fn canonical_host_slots(n: usize) -> Vec<HReg> {
    const POOL: [HReg; 4] = [HReg::Ecx, HReg::Ebx, HReg::Esi, HReg::Edi];
    POOL[..n].to_vec()
}

/// Sample immediate vectors for a key, respecting slot roles (shift
/// amounts must stay in 1–31, displacements small, generic immediates
/// anywhere in the encodable range).
#[must_use]
pub fn sample_imm_vectors(key: &ComboKey) -> Vec<Vec<u32>> {
    let roles: Vec<&ModeTag> = key
        .modes
        .iter()
        .filter(|m| matches!(m, ModeTag::Imm | ModeTag::Shifted(_) | ModeTag::MemBaseImm))
        .collect();
    let samples = [0usize, 1, 2];
    samples
        .iter()
        .map(|s| {
            roles
                .iter()
                .map(|m| match m {
                    ModeTag::Imm => [5u32, 0, 2047][*s],
                    ModeTag::Shifted(_) => [1u32, 7, 31][*s],
                    ModeTag::MemBaseImm => [4u32, 0, (-8i32) as u32][*s],
                    _ => unreachable!(),
                })
                .collect()
        })
        .collect()
}

/// Verifies a `(key, template)` pair over canonical registers and the
/// sample immediate vectors. Returns the flag report on success.
///
/// This is the verification step shared by learning (imm
/// generalization) and parameterization (derived-rule validation,
/// §IV-C: "instantiate all possible derived rules … and verify each").
///
/// # Errors
///
/// A human-readable reason on the first failing sample.
pub fn verify_combo(
    key: &ComboKey,
    template: &Template,
    opts: CheckOptions,
) -> Result<Vec<(Flag, FlagEquiv)>, String> {
    let _span = pdbt_obs::span_with("verify", || key.to_string());
    let n = key::slot_count(key);
    if n > 4 {
        return Err(format!("{n} parameter slots exceed the canonical pool"));
    }
    let gslots = canonical_guest_slots(n);
    let hslots = canonical_host_slots(n);
    let mapping = Mapping::new(gslots.iter().copied().zip(hslots.iter().copied()).collect());
    let locs: Vec<HostLoc> = hslots.iter().map(|h| HostLoc::Reg(*h)).collect();
    let mut report: Option<Vec<(Flag, FlagEquiv)>> = None;
    for imms in sample_imm_vectors(key) {
        let ginst = key::reconstruct(
            key,
            &Instantiation {
                slots: gslots.clone(),
                imms: imms.clone(),
            },
        )
        .ok_or_else(|| "key does not reconstruct".to_string())?;
        let host = instantiate(template, &locs, &imms).map_err(|e| e.to_string())?;
        match check(&[ginst], &host, &mapping, opts) {
            Verdict::Equivalent { flags } => {
                report = Some(match report {
                    None => flags,
                    Some(prev) => prev
                        .into_iter()
                        .zip(flags)
                        .map(|((f, a), (_, b))| (f, if a == b { a } else { FlagEquiv::Mismatch }))
                        .collect(),
                });
            }
            Verdict::NotEquivalent { reason }
            | Verdict::Unproven { reason }
            | Verdict::Unsupported { reason } => return Err(reason),
        }
    }
    Ok(report.unwrap_or_default())
}

/// Verifies a `(sequence key, template)` pair over canonical registers
/// and sample immediates, like [`verify_combo`] but for learned
/// sequence rules.
///
/// # Errors
///
/// A human-readable reason on the first failing sample.
pub fn verify_seq(
    keys: &[ComboKey],
    template: &Template,
    n_slots: usize,
    opts: CheckOptions,
) -> Result<Vec<(Flag, FlagEquiv)>, String> {
    let _span = pdbt_obs::span_with("verify", || {
        keys.iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    });
    if n_slots > 4 {
        return Err(format!(
            "{n_slots} parameter slots exceed the canonical pool"
        ));
    }
    let gslots = canonical_guest_slots(n_slots);
    let hslots = canonical_host_slots(n_slots);
    let mapping = Mapping::new(gslots.iter().copied().zip(hslots.iter().copied()).collect());
    let locs: Vec<HostLoc> = hslots.iter().map(|h| HostLoc::Reg(*h)).collect();
    // Sample vector built per-key, concatenated in key order.
    let mut report: Option<Vec<(Flag, FlagEquiv)>> = None;
    for sample in 0..3usize {
        let mut imms = Vec::new();
        for key in keys {
            let vecs = sample_imm_vectors(key);
            imms.extend(vecs[sample].clone());
        }
        let ginsts = key::reconstruct_seq(
            keys,
            &Instantiation {
                slots: gslots.clone(),
                imms: imms.clone(),
            },
        )
        .ok_or_else(|| "sequence key does not reconstruct".to_string())?;
        let host = instantiate(template, &locs, &imms).map_err(|e| e.to_string())?;
        match check(&ginsts, &host, &mapping, opts) {
            Verdict::Equivalent { flags } => {
                report = Some(match report {
                    None => flags,
                    Some(prev) => prev
                        .into_iter()
                        .zip(flags)
                        .map(|((f, a), (_, b))| (f, if a == b { a } else { FlagEquiv::Mismatch }))
                        .collect(),
                });
            }
            Verdict::NotEquivalent { reason }
            | Verdict::Unproven { reason }
            | Verdict::Unsupported { reason } => return Err(reason),
        }
    }
    Ok(report.unwrap_or_default())
}

/// A matched rule ready to instantiate.
#[derive(Debug, Clone)]
pub struct Match<'a> {
    /// The key that matched (attribution label for observability).
    pub key: ComboKey,
    /// The rule.
    pub entry: &'a RuleEntry,
    /// The guest instruction's concrete registers and immediates.
    pub inst: Instantiation,
}

/// A matched sequence rule ready to instantiate.
#[derive(Debug, Clone)]
pub struct SeqMatch<'a> {
    /// The keys that matched, in sequence order.
    pub keys: Vec<ComboKey>,
    /// The rule.
    pub entry: &'a RuleEntry,
    /// Concrete registers and immediates for the whole sequence.
    pub inst: Instantiation,
    /// Guest instructions the match consumes.
    pub len: usize,
}

/// The rule hash table: single-instruction rules plus learned
/// multi-instruction *sequence rules* (matched as-is; the paper
/// parameterizes only single-instruction rules, §V-D).
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    entries: HashMap<ComboKey, RuleEntry>,
    seq_entries: HashMap<Vec<ComboKey>, RuleEntry>,
    /// Longest sequence key, for the runtime's greedy matcher.
    max_seq: usize,
    /// Dense `(opcode, s)`-indexed entry counts. Translation probes the
    /// store once per guest instruction and most probes miss (every
    /// QEMU-path body instruction); a zero bucket rejects the lookup
    /// before the allocating `parameterize` call builds a `ComboKey`.
    op_index: Vec<u32>,
}

/// The `op_index` bucket of an `(opcode, s)` pair.
fn op_bucket(op: GOpc, s: bool) -> usize {
    (op as usize) * 2 + usize::from(s)
}

impl RuleSet {
    /// Creates an empty rule set.
    #[must_use]
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a rule; returns `false` (and keeps the existing rule) if
    /// the key is already present — the merging step of §IV-D.
    pub fn insert(&mut self, key: ComboKey, entry: RuleEntry) -> bool {
        use std::collections::hash_map::Entry;
        let bucket = op_bucket(key.op, key.s);
        match self.entries.entry(key) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(entry);
                if self.op_index.is_empty() {
                    self.op_index = vec![0; GOpc::ALL.len() * 2];
                }
                self.op_index[bucket] += 1;
                true
            }
        }
    }

    /// Whether any rule exists for this `(opcode, s)` pair — the O(1)
    /// probe the translator uses to skip parameterization on guaranteed
    /// misses.
    #[must_use]
    pub fn op_present(&self, op: GOpc, s: bool) -> bool {
        self.op_index
            .get(op_bucket(op, s))
            .is_some_and(|count| *count != 0)
    }

    /// Inserts a sequence rule (merging duplicates like [`RuleSet::insert`]).
    pub fn insert_seq(&mut self, keys: Vec<ComboKey>, entry: RuleEntry) -> bool {
        use std::collections::hash_map::Entry;
        self.max_seq = self.max_seq.max(keys.len());
        match self.seq_entries.entry(keys) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(entry);
                true
            }
        }
    }

    /// Number of sequence rules.
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.seq_entries.len()
    }

    /// Length of the longest sequence rule (0 when there are none).
    #[must_use]
    pub fn max_seq_len(&self) -> usize {
        self.max_seq
    }

    /// Greedy longest-first sequence lookup starting at `insts[0]`.
    ///
    /// The window is parameterized once ([`key::SeqScan`]) and each
    /// candidate length probes a sliced key prefix — `Vec<ComboKey>`
    /// hashes as its slice, so `seq_entries` is queried through
    /// `Borrow<[ComboKey]>` without re-scanning per length.
    #[must_use]
    pub fn lookup_seq(&self, insts: &[GInst]) -> Option<SeqMatch<'_>> {
        let max = self.max_seq.min(insts.len());
        if max < 2 {
            return None;
        }
        let scan = key::SeqScan::scan(insts, max);
        for len in (2..=max.min(scan.valid_len())).rev() {
            if let Some(entry) = self.seq_entries.get(scan.keys(len)) {
                if let Some(required) = &entry.imm_constraint {
                    if required[..] != *scan.imms(len) {
                        continue;
                    }
                }
                return Some(SeqMatch {
                    keys: scan.keys(len).to_vec(),
                    entry,
                    inst: scan.instantiation(len),
                    len,
                });
            }
        }
        None
    }

    /// Instantiates a sequence match with the actual host locations of
    /// its slots.
    ///
    /// # Errors
    ///
    /// Forwarded template errors.
    pub fn instantiate_seq_match(
        &self,
        m: &SeqMatch<'_>,
        locs: &[HostLoc],
    ) -> Result<Vec<HInst>, crate::template::TemplateError> {
        instantiate(&m.entry.template, locs, &m.inst.imms)
    }

    /// Whether a key is present.
    #[must_use]
    pub fn contains(&self, key: &ComboKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The entry for a key.
    #[must_use]
    pub fn get(&self, key: &ComboKey) -> Option<&RuleEntry> {
        self.entries.get(key)
    }

    /// Looks up a guest instruction: parameterize, hash, check immediate
    /// constraints (paper §IV-D rule application).
    #[must_use]
    pub fn lookup(&self, inst: &GInst) -> Option<Match<'_>> {
        if !self.op_present(inst.op, inst.s) {
            return None;
        }
        let Parameterized {
            key,
            inst: concrete,
        } = key::parameterize(inst)?;
        let entry = self.entries.get(&key)?;
        if let Some(required) = &entry.imm_constraint {
            if *required != concrete.imms {
                return None;
            }
        }
        Some(Match {
            key,
            entry,
            inst: concrete,
        })
    }

    /// Instantiates a match with the actual host locations of its slots.
    ///
    /// # Errors
    ///
    /// Forwarded template errors (arity mismatches).
    pub fn instantiate_match(
        &self,
        m: &Match<'_>,
        locs: &[HostLoc],
    ) -> Result<Vec<HInst>, crate::template::TemplateError> {
        instantiate(&m.entry.template, locs, &m.inst.imms)
    }

    /// Iterates over all rules.
    pub fn iter(&self) -> impl Iterator<Item = (&ComboKey, &RuleEntry)> {
        self.entries.iter()
    }

    /// Rule count by provenance.
    #[must_use]
    pub fn count_by_provenance(&self, p: Provenance) -> usize {
        self.entries.values().filter(|e| e.provenance == p).count()
    }

    /// Merges another rule set into this one (existing keys win);
    /// returns how many entries were newly added.
    pub fn merge(&mut self, other: RuleSet) -> usize {
        let mut added = 0;
        for (k, v) in other.entries {
            if self.insert(k, v) {
                added += 1;
            }
        }
        for (k, v) in other.seq_entries {
            if self.insert_seq(k, v) {
                added += 1;
            }
        }
        added
    }

    /// Iterates over the sequence rules.
    pub fn iter_seq(&self) -> impl Iterator<Item = (&Vec<ComboKey>, &RuleEntry)> {
        self.seq_entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::extract;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::Operand as GOp;
    use pdbt_isa_x86::builders as h;
    use pdbt_isa_x86::Operand as HOperand;

    fn rmw_add_rule() -> (ComboKey, RuleEntry) {
        // add r0, r0, #imm ↔ addl S0, $imm
        let p = key::parameterize(&g::add(GReg::R4, GReg::R4, GOp::Imm(5))).unwrap();
        let host = [h::add(HReg::Ecx.into(), HOperand::Imm(5))];
        let template = extract(&host, &|r| (r == HReg::Ecx).then_some(0), &[5]).unwrap();
        let flags = verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
        (
            p.key,
            RuleEntry {
                template,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None,
            },
        )
    }

    #[test]
    fn verify_combo_accepts_correct_rule() {
        let (_, entry) = rmw_add_rule();
        assert_eq!(entry.flags, vec![], "non-S add defines no flags");
    }

    #[test]
    fn verify_combo_rejects_wrong_rule() {
        // add key with a subl template must fail.
        let p = key::parameterize(&g::add(GReg::R4, GReg::R4, GOp::Imm(5))).unwrap();
        let host = [h::sub(HReg::Ecx.into(), HOperand::Imm(5))];
        let template = extract(&host, &|r| (r == HReg::Ecx).then_some(0), &[5]).unwrap();
        assert!(verify_combo(&p.key, &template, CheckOptions::default()).is_err());
    }

    #[test]
    fn verify_combo_reports_s_flags() {
        let p = key::parameterize(&g::add(GReg::R4, GReg::R4, GOp::Imm(5)).with_s()).unwrap();
        let host = [h::add(HReg::Ecx.into(), HOperand::Imm(5))];
        let template = extract(&host, &|r| (r == HReg::Ecx).then_some(0), &[5]).unwrap();
        let flags = verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
        assert!(flags.contains(&(Flag::C, FlagEquiv::Exact)));
        assert!(flags.contains(&(Flag::Z, FlagEquiv::Exact)));
    }

    #[test]
    fn lookup_matches_any_registers_and_imms() {
        let (key, entry) = rmw_add_rule();
        let mut rs = RuleSet::new();
        assert!(rs.insert(key, entry));
        // Different registers and immediate, same combo.
        let m = rs
            .lookup(&g::add(GReg::R9, GReg::R9, GOp::Imm(77)))
            .unwrap();
        assert_eq!(m.inst.slots, vec![GReg::R9]);
        assert_eq!(m.inst.imms, vec![77]);
        let code = rs
            .instantiate_match(&m, &[HostLoc::Reg(HReg::Edi)])
            .unwrap();
        assert_eq!(code, vec![h::add(HReg::Edi.into(), HOperand::Imm(77))]);
        // A different dependence pattern does not match.
        assert!(rs
            .lookup(&g::add(GReg::R0, GReg::R1, GOp::Imm(77)))
            .is_none());
        // A different opcode does not match.
        assert!(rs
            .lookup(&g::eor(GReg::R9, GReg::R9, GOp::Imm(77)))
            .is_none());
    }

    #[test]
    fn imm_constraint_restricts_lookup() {
        let (key, mut entry) = rmw_add_rule();
        entry.imm_constraint = Some(vec![5]);
        let mut rs = RuleSet::new();
        rs.insert(key, entry);
        assert!(rs
            .lookup(&g::add(GReg::R4, GReg::R4, GOp::Imm(5)))
            .is_some());
        assert!(rs
            .lookup(&g::add(GReg::R4, GReg::R4, GOp::Imm(6)))
            .is_none());
    }

    #[test]
    fn duplicate_insert_is_merged() {
        let (key, entry) = rmw_add_rule();
        let mut rs = RuleSet::new();
        assert!(rs.insert(key.clone(), entry.clone()));
        assert!(!rs.insert(key, entry), "second insert is a duplicate");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.count_by_provenance(Provenance::Learned), 1);
    }

    #[test]
    fn op_index_gates_lookup() {
        let (key, entry) = rmw_add_rule();
        let mut rs = RuleSet::new();
        assert!(!rs.op_present(GOpc::Add, false), "empty set has no buckets");
        rs.insert(key, entry);
        assert!(rs.op_present(GOpc::Add, false));
        assert!(!rs.op_present(GOpc::Add, true), "s-variant is distinct");
        assert!(!rs.op_present(GOpc::Eor, false));
        // The index survives clones and still admits real matches.
        let cloned = rs.clone();
        assert!(cloned
            .lookup(&g::add(GReg::R1, GReg::R1, GOp::Imm(9)))
            .is_some());
    }

    #[test]
    fn merge_counts_new_entries() {
        let (key, entry) = rmw_add_rule();
        let mut a = RuleSet::new();
        a.insert(key.clone(), entry.clone());
        let mut b = RuleSet::new();
        b.insert(key, entry);
        assert_eq!(a.merge(b), 0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn sample_imm_vectors_respect_roles() {
        let p = key::parameterize(&g::add(
            GReg::R4,
            GReg::R5,
            GOp::Shifted {
                rm: GReg::R6,
                kind: pdbt_isa_arm::ShiftKind::Lsl,
                amount: 2,
            },
        ))
        .unwrap();
        for v in sample_imm_vectors(&p.key) {
            assert_eq!(v.len(), 1);
            assert!((1..=31).contains(&v[0]), "shift amount {v:?}");
        }
    }
}
