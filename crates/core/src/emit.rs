//! Template emission for derived combos — the constructive form of the
//! paper's parameterization adapters.
//!
//! A derived rule's host code is obtained from the learned corpus by
//! opcode substitution (via the subgroup's host-counterpart table),
//! addressing-mode substitution, auxiliary-instruction insertion for
//! complex opcodes (§IV-C1, Fig 7) and for dependence-pattern changes
//! (§IV-C2, Fig 8). This module implements those adapters as one
//! procedure from a combo key to a host template; every emitted template
//! still passes the same symbolic verification as a learned rule, so an
//! emission bug can reject rules but never admit a wrong one.

use crate::classify::{host_counterpart, HostCounterpart};
use crate::key::{ComboKey, ModeTag};
use crate::template::{TImm, TMem, TOperand, TReg, Template, TemplateInst};
use pdbt_isa_arm::{Op as GOp, OperandTransform, Shape, ShiftKind};
use pdbt_isa_x86::Op as HOp;

const EAX: TReg = TReg::Scratch(0);
const EDX: TReg = TReg::Scratch(1);

fn ti(op: HOp, operands: Vec<TOperand>) -> TemplateInst {
    TemplateInst {
        op,
        cc: None,
        operands,
    }
}

fn shift_hop(kind: ShiftKind) -> HOp {
    match kind {
        ShiftKind::Lsl => HOp::Shl,
        ShiftKind::Lsr => HOp::Shr,
        ShiftKind::Asr => HOp::Sar,
        ShiftKind::Ror => HOp::Ror,
    }
}

/// Positional decode of a key: slots per register position and the
/// flexible-operand description.
struct Decoded {
    /// Slot of each register mention, in scan order.
    regs: Vec<u8>,
    /// The mode of the final (flexible or memory) operand.
    last_mode: ModeTag,
}

fn decode(key: &ComboKey) -> Decoded {
    Decoded {
        regs: key.reg_pattern.clone(),
        last_mode: *key.modes.last().expect("non-empty modes"),
    }
}

/// The flexible second operand, materialized if necessary.
/// Returns (setup code, final operand, whether `edx` holds it).
fn flex_operand(
    d: &Decoded,
    reg_cursor: usize,
    transform: Option<OperandTransform>,
) -> (Vec<TemplateInst>, TOperand) {
    let mut setup = Vec::new();
    let base: TOperand = match d.last_mode {
        ModeTag::Imm => TOperand::Imm(TImm::Slot(0)),
        ModeTag::Reg => TOperand::Reg(TReg::Slot(d.regs[reg_cursor])),
        ModeTag::Shifted(kind) => {
            setup.push(ti(
                HOp::Mov,
                vec![
                    TOperand::Reg(EDX),
                    TOperand::Reg(TReg::Slot(d.regs[reg_cursor])),
                ],
            ));
            setup.push(ti(
                shift_hop(kind),
                vec![TOperand::Reg(EDX), TOperand::Imm(TImm::Slot(0))],
            ));
            TOperand::Reg(EDX)
        }
        _ => unreachable!("flex operand is imm/reg/shifted"),
    };
    match transform {
        None | Some(OperandTransform::SwapSources) => (setup, base),
        Some(t) => {
            // Invert or negate the operand through edx (paper Fig 7's
            // auxiliary instructions).
            let target = if base == TOperand::Reg(EDX) {
                base
            } else {
                setup.push(ti(HOp::Mov, vec![TOperand::Reg(EDX), base]));
                TOperand::Reg(EDX)
            };
            let aux = match t {
                OperandTransform::InvertLastSource => HOp::Not,
                OperandTransform::NegateLastSource => HOp::Neg,
                OperandTransform::SwapSources => unreachable!(),
            };
            setup.push(ti(aux, vec![target]));
            (setup, target)
        }
    }
}

/// Whether an operand references slot `s`.
fn references(op: &TOperand, s: u8) -> bool {
    matches!(op, TOperand::Reg(TReg::Slot(x)) if *x == s)
}

/// Emits a host template for a combo key, or `None` when the shape is
/// outside the parameterizable universe.
#[must_use]
pub fn emit_for(key: &ComboKey) -> Option<Template> {
    let HostCounterpart { hop, transform } = host_counterpart(key.op)?;
    let d = decode(key);
    let out: Template = match key.op.shape() {
        // ---- three-operand data processing --------------------------------
        Shape::Dp3 => {
            let dst = TReg::Slot(d.regs[0]);
            let x = TOperand::Reg(TReg::Slot(d.regs[1]));
            let (mut code, y) = flex_operand(&d, 2, transform);
            if transform == Some(OperandTransform::SwapSources) {
                // dst = y - x (rsb/rsc): universal via-scratch form.
                code.push(ti(HOp::Mov, vec![TOperand::Reg(EAX), y]));
                code.push(ti(hop, vec![TOperand::Reg(EAX), x]));
                code.push(ti(HOp::Mov, vec![TOperand::Reg(dst), TOperand::Reg(EAX)]));
            } else if d.regs[0] == d.regs[1] {
                // Read-modify-write: op dst, y.
                code.push(ti(hop, vec![TOperand::Reg(dst), y]));
            } else if references(&y, d.regs[0]) {
                // dst aliases the second source: go through eax (the
                // dependence-pattern auxiliary move of Fig 8).
                code.push(ti(HOp::Mov, vec![TOperand::Reg(EAX), x]));
                code.push(ti(hop, vec![TOperand::Reg(EAX), y]));
                code.push(ti(HOp::Mov, vec![TOperand::Reg(dst), TOperand::Reg(EAX)]));
            } else {
                code.push(ti(HOp::Mov, vec![TOperand::Reg(dst), x]));
                code.push(ti(hop, vec![TOperand::Reg(dst), y]));
            }
            code
        }
        // ---- two-operand moves ----------------------------------------------
        Shape::Dp2 => {
            let dst = TReg::Slot(d.regs[0]);
            let (mut code, y) = flex_operand(&d, 1, transform);
            code.push(ti(HOp::Mov, vec![TOperand::Reg(dst), y]));
            code
        }
        // ---- compares ---------------------------------------------------------
        Shape::Cmp2 => {
            let x = TOperand::Reg(TReg::Slot(d.regs[0]));
            match key.op {
                GOp::Cmp => {
                    let (mut code, y) = flex_operand(&d, 1, None);
                    code.push(ti(HOp::Cmp, vec![x, y]));
                    code
                }
                GOp::Tst => {
                    let (mut code, y) = flex_operand(&d, 1, None);
                    code.push(ti(HOp::Test, vec![x, y]));
                    code
                }
                GOp::Cmn => {
                    // Flags of a + b: compute the addition in eax so the
                    // host flags match the guest's exactly.
                    let (mut code, y) = flex_operand(&d, 1, None);
                    code.push(ti(HOp::Mov, vec![TOperand::Reg(EAX), x]));
                    code.push(ti(HOp::Add, vec![TOperand::Reg(EAX), y]));
                    code
                }
                GOp::Teq => {
                    let (mut code, y) = flex_operand(&d, 1, None);
                    code.push(ti(HOp::Mov, vec![TOperand::Reg(EAX), x]));
                    code.push(ti(HOp::Xor, vec![TOperand::Reg(EAX), y]));
                    code
                }
                _ => return None,
            }
        }
        // ---- loads and stores ---------------------------------------------------
        Shape::LdSt => {
            let rt = TReg::Slot(d.regs[0]);
            let mem = match d.last_mode {
                ModeTag::MemBaseImm => TMem {
                    base: Some(TReg::Slot(d.regs[1])),
                    index: None,
                    disp: TImm::Slot(0),
                },
                ModeTag::MemBaseReg => TMem {
                    base: Some(TReg::Slot(d.regs[1])),
                    index: Some(TReg::Slot(d.regs[2])),
                    disp: TImm::Fixed(0),
                },
                _ => return None,
            };
            if key.op.is_store() {
                vec![ti(hop, vec![TOperand::Mem(mem), TOperand::Reg(rt)])]
            } else {
                vec![ti(hop, vec![TOperand::Reg(rt), TOperand::Mem(mem)])]
            }
        }
        // ---- multiply -----------------------------------------------------------
        Shape::Mul3 => {
            let dst = TReg::Slot(d.regs[0]);
            let rm = d.regs[1];
            let rs = d.regs[2];
            if d.regs[0] == rm {
                vec![ti(
                    HOp::Imul,
                    vec![TOperand::Reg(dst), TOperand::Reg(TReg::Slot(rs))],
                )]
            } else if d.regs[0] == rs {
                vec![ti(
                    HOp::Imul,
                    vec![TOperand::Reg(dst), TOperand::Reg(TReg::Slot(rm))],
                )]
            } else {
                vec![
                    ti(
                        HOp::Mov,
                        vec![TOperand::Reg(dst), TOperand::Reg(TReg::Slot(rm))],
                    ),
                    ti(
                        HOp::Imul,
                        vec![TOperand::Reg(dst), TOperand::Reg(TReg::Slot(rs))],
                    ),
                ]
            }
        }
        // Everything else (mul4, clz, branches, stack, float) is outside
        // the parameterizable universe.
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::parameterize;
    use crate::ruleset::verify_combo;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{MemAddr, Operand as O, Reg};
    use pdbt_symexec::CheckOptions;

    fn emit_and_verify(inst: pdbt_isa_arm::Inst) {
        let p = parameterize(&inst).unwrap_or_else(|| panic!("parameterize {inst}"));
        let t = emit_for(&p.key).unwrap_or_else(|| panic!("emit {inst}"));
        verify_combo(&p.key, &t, CheckOptions::default())
            .unwrap_or_else(|e| panic!("verify {inst}: {e}"));
    }

    #[test]
    fn emits_verified_templates_for_dp_universe() {
        // Every DP opcode × representative modes × dependence patterns.
        let ops: Vec<fn(Reg, Reg, O) -> pdbt_isa_arm::Inst> = vec![
            g::add,
            g::sub,
            g::and,
            g::orr,
            g::eor,
            g::bic,
            g::rsb,
            g::lsl,
            g::lsr,
            g::asr,
            g::ror,
        ];
        for op in ops {
            // RMW / distinct / dst-aliases-src2 patterns, reg and imm modes.
            emit_and_verify(op(Reg::R4, Reg::R4, O::Reg(Reg::R5)));
            emit_and_verify(op(Reg::R4, Reg::R5, O::Reg(Reg::R6)));
            emit_and_verify(op(Reg::R4, Reg::R5, O::Reg(Reg::R4)));
            emit_and_verify(op(Reg::R4, Reg::R4, O::Imm(9)));
            emit_and_verify(op(Reg::R4, Reg::R5, O::Imm(9)));
            // Shifted-register mode.
            emit_and_verify(op(
                Reg::R4,
                Reg::R5,
                O::Shifted {
                    rm: Reg::R6,
                    kind: ShiftKind::Lsl,
                    amount: 3,
                },
            ));
        }
    }

    #[test]
    fn emits_verified_s_variants() {
        emit_and_verify(g::add(Reg::R4, Reg::R4, O::Imm(1)).with_s());
        emit_and_verify(g::sub(Reg::R4, Reg::R5, O::Reg(Reg::R6)).with_s());
        emit_and_verify(g::eor(Reg::R4, Reg::R4, O::Reg(Reg::R5)).with_s());
        emit_and_verify(g::and(Reg::R4, Reg::R5, O::Imm(0xff)).with_s());
        emit_and_verify(g::rsb(Reg::R4, Reg::R5, O::Imm(0)).with_s());
    }

    #[test]
    fn emits_verified_mov_and_mvn() {
        emit_and_verify(g::mov(Reg::R4, O::Imm(7)));
        emit_and_verify(g::mov(Reg::R4, O::Reg(Reg::R5)));
        emit_and_verify(g::mvn(Reg::R4, O::Imm(7)));
        emit_and_verify(g::mvn(Reg::R4, O::Reg(Reg::R5)));
        emit_and_verify(g::mvn(Reg::R4, O::Reg(Reg::R4)));
        emit_and_verify(g::mov(
            Reg::R4,
            O::Shifted {
                rm: Reg::R5,
                kind: ShiftKind::Lsr,
                amount: 4,
            },
        ));
    }

    #[test]
    fn emits_verified_compares() {
        emit_and_verify(g::cmp(Reg::R4, O::Imm(100)));
        emit_and_verify(g::cmp(Reg::R4, O::Reg(Reg::R5)));
        emit_and_verify(g::cmn(Reg::R4, O::Reg(Reg::R5)));
        emit_and_verify(g::tst(Reg::R4, O::Imm(1)));
        emit_and_verify(g::teq(Reg::R4, O::Reg(Reg::R5)));
    }

    #[test]
    fn emits_verified_loads_and_stores() {
        emit_and_verify(g::ldr(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R5,
                offset: 8,
            },
        ));
        emit_and_verify(g::ldr(
            Reg::R4,
            MemAddr::BaseReg {
                base: Reg::R5,
                index: Reg::R6,
            },
        ));
        emit_and_verify(g::ldrb(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R5,
                offset: 0,
            },
        ));
        emit_and_verify(g::ldrh(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R5,
                offset: 2,
            },
        ));
        emit_and_verify(g::str_(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R5,
                offset: 8,
            },
        ));
        emit_and_verify(g::str_(
            Reg::R4,
            MemAddr::BaseReg {
                base: Reg::R5,
                index: Reg::R6,
            },
        ));
        emit_and_verify(g::strb(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R5,
                offset: 0,
            },
        ));
        emit_and_verify(g::strh(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R5,
                offset: 2,
            },
        ));
        // Load with rt == base.
        emit_and_verify(g::ldr(
            Reg::R4,
            MemAddr::BaseImm {
                base: Reg::R4,
                offset: 4,
            },
        ));
    }

    #[test]
    fn emits_verified_mul_patterns() {
        emit_and_verify(g::mul(Reg::R4, Reg::R4, Reg::R5));
        emit_and_verify(g::mul(Reg::R4, Reg::R5, Reg::R4));
        emit_and_verify(g::mul(Reg::R4, Reg::R5, Reg::R6));
        emit_and_verify(g::mul(Reg::R4, Reg::R5, Reg::R5));
    }

    #[test]
    fn unparameterizable_shapes_return_none() {
        let p = parameterize(&g::mla(Reg::R4, Reg::R5, Reg::R6, Reg::R7)).unwrap();
        assert!(emit_for(&p.key).is_none(), "mla has no host counterpart");
        let p = parameterize(&g::clz(Reg::R4, Reg::R5)).unwrap();
        assert!(emit_for(&p.key).is_none(), "clz has no host counterpart");
        let p = parameterize(&g::umull(Reg::R4, Reg::R5, Reg::R6, Reg::R7)).unwrap();
        assert!(emit_for(&p.key).is_none());
    }

    #[test]
    fn adc_family_emits_but_fails_verification() {
        // adc needs the host CF to equal the guest C at entry, which no
        // rule can guarantee — verification rejects it, so it falls back
        // to the QEMU path.
        let p = parameterize(&g::adc(Reg::R4, Reg::R4, O::Imm(1))).unwrap();
        if let Some(t) = emit_for(&p.key) {
            assert!(verify_combo(&p.key, &t, CheckOptions::default()).is_err());
        }
    }
}
