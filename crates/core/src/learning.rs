//! The learning pipeline: candidate extraction, verification, merging.
//!
//! Implements the workflow of paper Fig 1 over the synthetic compiler's
//! output: every debug-map entry pairs a guest sequence with a host
//! sequence compiled from the same source statement; the pair is
//! verified by symbolic execution; survivors are normalized into combo
//! keys and merged into the rule store. The per-stage counters reproduce
//! the funnel of Table I.

use crate::key::{self, Parameterized};
use crate::ruleset::{verify_combo, verify_seq, Provenance, RuleEntry, RuleSet};
use crate::template;
use pdbt_compiler::{CompiledPair, DebugEntry};
use pdbt_isa_arm::{Inst as GInst, Op as GOp};
use pdbt_isa_x86::Inst as HInst;
use pdbt_symexec::{check, propose_mappings, CheckOptions, Verdict};
use std::collections::HashMap;

/// Why a candidate was rejected (reported per benchmark; the categories
/// map to the paper's §II-B discussion and §V-B2 unlearnables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reject {
    /// Contains one of the instructions the paper found unlearnable
    /// (`push`, `pop`, `bl`, `b`, `mla`, `umull`, `umlal`, `clz`) or
    /// another non-parameterizable shape.
    Unlearnable,
    /// Multi-instruction sequences longer than the supported maximum
    /// (sequence rules are learned up to [`MAX_SEQ`] instructions and
    /// matched as-is; per §V-D they are never parameterized).
    Sequence,
    /// No register mapping between the sides could be inferred.
    NoMapping,
    /// Symbolic verification failed (non-equivalent or unproven).
    Verification,
    /// The host side is not templatable (frame slots, control flow).
    Template,
    /// A duplicate of an already-learned rule (the merging step).
    Duplicate,
}

/// Per-benchmark funnel counters (one row of Table I).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunnelStats {
    /// Source statements in the program.
    pub statements: usize,
    /// Rule candidates surviving the debug map.
    pub candidates: usize,
    /// Candidates passing verification (pre-merge).
    pub learned: usize,
    /// New unique rules after merging.
    pub unique: usize,
    /// Rejection counts by reason.
    pub rejects: HashMap<Reject, usize>,
}

impl FunnelStats {
    fn reject(&mut self, r: Reject) {
        *self.rejects.entry(r).or_insert(0) += 1;
    }
}

/// Learning configuration.
#[derive(Debug, Clone, Copy)]
pub struct LearnConfig {
    /// Verifier options.
    pub check: CheckOptions,
    /// Mapping proposals to try per candidate.
    pub max_mappings: usize,
}

impl Default for LearnConfig {
    fn default() -> LearnConfig {
        LearnConfig {
            check: CheckOptions::default(),
            max_mappings: 16,
        }
    }
}

/// Longest learnable instruction sequence.
pub const MAX_SEQ: usize = 3;

/// The paper's seven unlearnable opcodes (§V-B2) plus `umull`, which
/// shares `umlal`'s no-single-host-counterpart property in this model.
#[must_use]
pub fn is_unlearnable(op: GOp) -> bool {
    matches!(
        op,
        GOp::Push
            | GOp::Pop
            | GOp::Bl
            | GOp::B
            | GOp::Bx
            | GOp::Mla
            | GOp::Umlal
            | GOp::Umull
            | GOp::Clz
            | GOp::Svc
    )
}

/// A learned rule: a single-instruction combo or a sequence.
enum Learned {
    Single(key::ComboKey, RuleEntry),
    Seq(Vec<key::ComboKey>, RuleEntry),
}

/// Tries to learn one candidate pair.
fn learn_candidate(guest: &[GInst], host: &[HInst], cfg: LearnConfig) -> Result<Learned, Reject> {
    // Line tables attribute a conditional statement's compare and its
    // branch to the same line; the compare is learnable even though the
    // branch is not (paper §V-B2: "an individual b instruction cannot be
    // learned"). Strip trailing control flow from both sides before
    // extraction.
    let mut guest = guest;
    while let Some(last) = guest.last() {
        if matches!(last.op, GOp::B | GOp::Bl | GOp::Bx) {
            guest = &guest[..guest.len() - 1];
        } else {
            break;
        }
    }
    let mut host = host;
    while let Some(last) = host.last() {
        if matches!(
            last.op,
            pdbt_isa_x86::Op::Jmp | pdbt_isa_x86::Op::Jcc | pdbt_isa_x86::Op::Call
        ) {
            host = &host[..host.len() - 1];
        } else {
            break;
        }
    }
    if guest.is_empty() || host.is_empty() {
        return Err(Reject::Template);
    }
    if guest.iter().any(|i| is_unlearnable(i.op)) {
        return Err(Reject::Unlearnable);
    }
    if guest.len() > 1 {
        return learn_seq_candidate(guest, host, cfg);
    }
    let inst = &guest[0];
    let Some(Parameterized {
        key,
        inst: concrete,
    }) = key::parameterize(inst)
    else {
        return Err(Reject::Unlearnable);
    };
    // Infer the register mapping and verify the concrete pair.
    let mappings = propose_mappings(guest, host, cfg.max_mappings);
    if mappings.is_empty() {
        return Err(Reject::NoMapping);
    }
    let mut verified = None;
    for m in &mappings {
        if check(guest, host, m, cfg.check).is_equivalent() {
            verified = Some(m.clone());
            break;
        }
    }
    let Some(mapping) = verified else {
        return Err(Reject::Verification);
    };
    // Align the mapping with the parameterization's slot order.
    let slot_of = |h: pdbt_isa_x86::Reg| -> Option<u8> {
        let g = mapping.pairs.iter().find(|(_, hh)| *hh == h)?.0;
        concrete.slots.iter().position(|s| *s == g).map(|i| i as u8)
    };
    // Every slot must be reachable through the mapping.
    for s in &concrete.slots {
        if !mapping.pairs.iter().any(|(g, _)| g == s) {
            return Err(Reject::NoMapping);
        }
    }
    let tmpl = template::extract(host, &slot_of, &concrete.imms).map_err(|_| Reject::Template)?;
    // Canonical re-verification also validates immediate generalization;
    // when it fails, keep the rule pinned to its concrete immediates if
    // the concrete pair verified (a constrained rule, §IV-C).
    match verify_combo(&key, &tmpl, cfg.check) {
        Ok(flags) => Ok(Learned::Single(
            key,
            RuleEntry {
                template: tmpl,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None,
            },
        )),
        Err(_) if key::imm_count(&key) > 0 => {
            // Re-verify only at the learned immediates, canonically.
            let n = key::slot_count(&key);
            let gslots = crate::ruleset::canonical_guest_slots(n);
            let hslots = crate::ruleset::canonical_host_slots(n);
            let cmap = pdbt_symexec::Mapping::new(
                gslots.iter().copied().zip(hslots.iter().copied()).collect(),
            );
            let locs: Vec<template::HostLoc> =
                hslots.iter().map(|h| template::HostLoc::Reg(*h)).collect();
            let ginst = key::reconstruct(
                &key,
                &key::Instantiation {
                    slots: gslots,
                    imms: concrete.imms.clone(),
                },
            )
            .ok_or(Reject::Template)?;
            let hcode = template::instantiate(&tmpl, &locs, &concrete.imms)
                .map_err(|_| Reject::Template)?;
            match check(&[ginst], &hcode, &cmap, cfg.check) {
                Verdict::Equivalent { flags } => Ok(Learned::Single(
                    key,
                    RuleEntry {
                        template: tmpl,
                        flags,
                        provenance: Provenance::Learned,
                        imm_constraint: Some(concrete.imms),
                    },
                )),
                _ => Err(Reject::Verification),
            }
        }
        Err(_) => Err(Reject::Verification),
    }
}

/// Learns a multi-instruction sequence rule (paper §V-D: learned but
/// never parameterized).
fn learn_seq_candidate(
    guest: &[GInst],
    host: &[HInst],
    cfg: LearnConfig,
) -> Result<Learned, Reject> {
    if guest.len() > MAX_SEQ {
        return Err(Reject::Sequence);
    }
    let Some((keys, concrete)) = key::parameterize_seq(guest) else {
        return Err(Reject::Unlearnable);
    };
    let mappings = propose_mappings(guest, host, cfg.max_mappings);
    if mappings.is_empty() {
        return Err(Reject::NoMapping);
    }
    let mut verified = None;
    for m in &mappings {
        if check(guest, host, m, cfg.check).is_equivalent() {
            verified = Some(m.clone());
            break;
        }
    }
    let Some(mapping) = verified else {
        return Err(Reject::Verification);
    };
    let slot_of = |h: pdbt_isa_x86::Reg| -> Option<u8> {
        let g = mapping.pairs.iter().find(|(_, hh)| *hh == h)?.0;
        concrete.slots.iter().position(|s| *s == g).map(|i| i as u8)
    };
    for s in &concrete.slots {
        if !mapping.pairs.iter().any(|(g, _)| g == s) {
            return Err(Reject::NoMapping);
        }
    }
    let tmpl = template::extract(host, &slot_of, &concrete.imms).map_err(|_| Reject::Template)?;
    match verify_seq(&keys, &tmpl, concrete.slots.len(), cfg.check) {
        Ok(flags) => Ok(Learned::Seq(
            keys,
            RuleEntry {
                template: tmpl,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None,
            },
        )),
        // Pin to the learned immediates when generalization fails.
        Err(_) if !concrete.imms.is_empty() => Ok(Learned::Seq(
            keys,
            RuleEntry {
                template: tmpl,
                flags: Vec::new(),
                provenance: Provenance::Learned,
                imm_constraint: Some(concrete.imms),
            },
        )),
        Err(_) => Err(Reject::Verification),
    }
}

/// Runs the learning pipeline over one compiled benchmark, adding new
/// rules to `rules`.
pub fn learn_into(
    rules: &mut RuleSet,
    pair: &CompiledPair,
    debug: &[DebugEntry],
    cfg: LearnConfig,
) -> FunnelStats {
    let _span = pdbt_obs::span("learn");
    let mut stats = FunnelStats {
        statements: pair.guest.spans.len(),
        candidates: debug.len(),
        ..FunnelStats::default()
    };
    for entry in debug {
        // Skewed line tables can point past the section ends; such
        // entries are unusable candidates (§II-B's "lose the
        // connection").
        if entry.guest.end > pair.guest.program.len() || entry.host.end > pair.host.insts.len() {
            stats.reject(Reject::Template);
            continue;
        }
        let guest = &pair.guest.program.insts()[entry.guest.clone()];
        let host = &pair.host.insts[entry.host.clone()];
        match learn_candidate(guest, host, cfg) {
            Ok(Learned::Single(key, rule)) => {
                stats.learned += 1;
                if rules.insert(key, rule) {
                    stats.unique += 1;
                } else {
                    stats.reject(Reject::Duplicate);
                }
            }
            Ok(Learned::Seq(keys, rule)) => {
                stats.learned += 1;
                if rules.insert_seq(keys, rule) {
                    stats.unique += 1;
                } else {
                    stats.reject(Reject::Duplicate);
                }
            }
            Err(r) => stats.reject(r),
        }
    }
    stats
}

/// Convenience: learn from a whole training set, returning the rule set
/// and per-benchmark stats.
pub fn learn_all<'a, I>(training: I, cfg: LearnConfig) -> (RuleSet, Vec<FunnelStats>)
where
    I: IntoIterator<Item = (&'a CompiledPair, &'a [DebugEntry])>,
{
    let mut rules = RuleSet::new();
    let mut stats = Vec::new();
    for (pair, debug) in training {
        stats.push(learn_into(&mut rules, pair, debug, cfg));
    }
    (rules, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_compiler::lang::*;
    use pdbt_compiler::{build_debug_map, compile_pair};

    fn compile(stmts: Vec<Stmt>, n_vars: u8) -> (CompiledPair, Vec<DebugEntry>) {
        let src = SourceProgram {
            functions: vec![Function {
                name: "main".into(),
                stmts,
                n_vars,
            }],
        };
        let pair = compile_pair(&src, 0x1000).unwrap();
        let debug = build_debug_map(&pair.guest, &pair.host);
        (pair, debug)
    }

    #[test]
    fn learns_simple_arithmetic_rules() {
        let (pair, debug) = compile(
            vec![
                Stmt::Un {
                    dst: Var(0),
                    op: UnOp::Mov,
                    a: Rvalue::Const(5),
                },
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(3),
                },
                Stmt::Bin {
                    dst: Var(2),
                    op: BinOp::Xor,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Var(Var(1)),
                },
                Stmt::Return,
            ],
            3,
        );
        let mut rules = RuleSet::new();
        let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert_eq!(stats.statements, 4);
        assert!(stats.unique >= 3, "{stats:?}");
        // The learned rules apply to fresh register/immediate choices.
        use pdbt_isa_arm::builders as g;
        use pdbt_isa_arm::{Operand as O, Reg};
        assert!(rules.lookup(&g::mov(Reg::R9, O::Imm(1000))).is_some());
        assert!(rules
            .lookup(&g::add(Reg::R11, Reg::R11, O::Imm(9)))
            .is_some());
    }

    #[test]
    fn unlearnable_instructions_are_rejected() {
        let (pair, debug) = compile(
            vec![
                Stmt::MulAdd {
                    dst: Var(0),
                    a: Var(1),
                    b: Var(2),
                    c: Var(0),
                },
                Stmt::Un {
                    dst: Var(1),
                    op: UnOp::Clz,
                    a: Rvalue::Var(Var(2)),
                },
                Stmt::Goto { target: Label(0) },
                Stmt::Define { label: Label(0) },
                Stmt::Return,
            ],
            3,
        );
        let mut rules = RuleSet::new();
        let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert_eq!(stats.unique, 0, "{stats:?}");
        assert!(
            stats
                .rejects
                .get(&Reject::Unlearnable)
                .copied()
                .unwrap_or(0)
                >= 2
        );
    }

    #[test]
    fn frame_slot_candidates_fail_templating() {
        // v5 lives in a host frame slot → operand-type mismatch (§II-B).
        let (pair, debug) = compile(
            vec![
                Stmt::Bin {
                    dst: Var(5),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(5)),
                    b: Rvalue::Const(1),
                },
                Stmt::Return,
            ],
            6,
        );
        let mut rules = RuleSet::new();
        let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert_eq!(stats.unique, 0);
        let losses = stats.rejects.get(&Reject::NoMapping).copied().unwrap_or(0)
            + stats.rejects.get(&Reject::Template).copied().unwrap_or(0)
            + stats
                .rejects
                .get(&Reject::Verification)
                .copied()
                .unwrap_or(0);
        assert!(losses >= 1, "{stats:?}");
    }

    #[test]
    fn duplicates_are_merged() {
        let (pair, debug) = compile(
            vec![
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(1),
                },
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(2),
                },
                Stmt::Bin {
                    dst: Var(1),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(1)),
                    b: Rvalue::Const(3),
                },
                Stmt::Return,
            ],
            2,
        );
        let mut rules = RuleSet::new();
        let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert_eq!(stats.learned, 3);
        assert_eq!(stats.unique, 1, "same combo key for all three");
        assert_eq!(stats.rejects.get(&Reject::Duplicate), Some(&2));
    }

    #[test]
    fn learned_rules_include_aux_move_shapes() {
        // v2 = v0 - v1 needs the three-address aux move on the host.
        let (pair, debug) = compile(
            vec![
                Stmt::Bin {
                    dst: Var(2),
                    op: BinOp::Sub,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Var(Var(1)),
                },
                Stmt::Return,
            ],
            3,
        );
        let mut rules = RuleSet::new();
        let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert_eq!(stats.unique, 1, "{stats:?}");
        use pdbt_isa_arm::builders as g;
        use pdbt_isa_arm::{Operand as O, Reg};
        let m = rules
            .lookup(&g::sub(Reg::R6, Reg::R4, O::Reg(Reg::R5)))
            .unwrap();
        assert!(m.entry.template.len() >= 2, "aux move preserved");
    }

    #[test]
    fn flag_setting_rules_record_flag_reports() {
        // A fused subs (from sub + branch) carries NZCV with C inverted.
        let (pair, debug) = compile(
            vec![
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Sub,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(1),
                },
                Stmt::Branch {
                    a: Var(0),
                    cmp: CmpKind::Ne,
                    b: Rvalue::Const(0),
                    target: Label(0),
                },
                Stmt::Define { label: Label(0) },
                Stmt::Return,
            ],
            1,
        );
        let mut rules = RuleSet::new();
        learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        use pdbt_isa::Flag;
        use pdbt_isa_arm::builders as g;
        use pdbt_isa_arm::{Operand as O, Reg};
        use pdbt_symexec::FlagEquiv;
        let m = rules
            .lookup(&g::sub(Reg::R4, Reg::R4, O::Imm(1)).with_s())
            .unwrap();
        assert_eq!(m.entry.flag_equiv(Flag::Z), Some(FlagEquiv::Exact));
        assert_eq!(m.entry.flag_equiv(Flag::C), Some(FlagEquiv::Inverted));
    }

    #[test]
    fn cmp_rules_learn_from_unfused_branches() {
        let (pair, debug) = compile(
            vec![
                Stmt::Branch {
                    a: Var(0),
                    cmp: CmpKind::LtS,
                    b: Rvalue::Const(10),
                    target: Label(0),
                },
                Stmt::Define { label: Label(0) },
                Stmt::Return,
            ],
            1,
        );
        // The branch statement's span contains cmp + b; trailing control
        // flow is stripped (the paper's `b` stays unlearnable, §V-B2),
        // leaving a learnable cmp rule.
        let mut rules = RuleSet::new();
        let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert_eq!(stats.unique, 1, "{stats:?}");
        use pdbt_isa_arm::builders as g;
        use pdbt_isa_arm::{Operand as O, Reg};
        assert!(rules.lookup(&g::cmp(Reg::R8, O::Imm(55))).is_some());
    }
}
