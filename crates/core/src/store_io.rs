//! Rule-set persistence: a line-oriented text format for saving learned
//! and derived rules, so a trained corpus can be shipped with a DBT
//! deployment and reloaded without re-running the pipeline.
//!
//! Format (one block per rule):
//!
//! ```text
//! # pdbt rules v1
//! rule eor|s=1|modes=reg,reg,imm|pat=0,0,1|prov=O|flags=N:E,Z:E|imms=*
//!   movl S0, S1
//!   xorl S0, $I0
//! end
//! ```

use crate::key::{ComboKey, ModeTag};
use crate::ruleset::{Provenance, RuleEntry, RuleSet};
use crate::template::{TImm, TMem, TOperand, TReg, TemplateInst};
use pdbt_isa::Flag;
use pdbt_isa_arm::{Op as GOp, ShiftKind};
use pdbt_isa_x86::{Cc, Op as HOp};
use pdbt_symexec::FlagEquiv;
use std::fmt;

/// A parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rules file line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for StoreError {}

fn mode_name(m: &ModeTag) -> String {
    match m {
        ModeTag::Reg => "reg".into(),
        ModeTag::Imm => "imm".into(),
        ModeTag::Shifted(k) => format!("s{k}"),
        ModeTag::MemBaseImm => "mbi".into(),
        ModeTag::MemBaseReg => "mbr".into(),
        ModeTag::Opaque => "opaque".into(),
    }
}

fn parse_mode(s: &str) -> Option<ModeTag> {
    Some(match s {
        "reg" => ModeTag::Reg,
        "imm" => ModeTag::Imm,
        "slsl" => ModeTag::Shifted(ShiftKind::Lsl),
        "slsr" => ModeTag::Shifted(ShiftKind::Lsr),
        "sasr" => ModeTag::Shifted(ShiftKind::Asr),
        "sror" => ModeTag::Shifted(ShiftKind::Ror),
        "mbi" => ModeTag::MemBaseImm,
        "mbr" => ModeTag::MemBaseReg,
        _ => return None,
    })
}

fn flag_letter(f: Flag) -> char {
    match f {
        Flag::N => 'N',
        Flag::Z => 'Z',
        Flag::C => 'C',
        Flag::V => 'V',
    }
}

fn parse_flag(c: char) -> Option<Flag> {
    Some(match c {
        'N' => Flag::N,
        'Z' => Flag::Z,
        'C' => Flag::C,
        'V' => Flag::V,
        _ => return None,
    })
}

fn equiv_letter(e: FlagEquiv) -> char {
    match e {
        FlagEquiv::Exact => 'E',
        FlagEquiv::Inverted => 'I',
        FlagEquiv::Mismatch => 'M',
    }
}

fn parse_equiv(c: char) -> Option<FlagEquiv> {
    Some(match c {
        'E' => FlagEquiv::Exact,
        'I' => FlagEquiv::Inverted,
        'M' => FlagEquiv::Mismatch,
        _ => return None,
    })
}

fn prov_letter(p: Provenance) -> char {
    match p {
        Provenance::Learned => 'L',
        Provenance::OpcodeDerived => 'O',
        Provenance::AddrModeDerived => 'A',
    }
}

fn parse_prov(c: char) -> Option<Provenance> {
    Some(match c {
        'L' => Provenance::Learned,
        'O' => Provenance::OpcodeDerived,
        'A' => Provenance::AddrModeDerived,
        _ => return None,
    })
}

fn treg_text(r: &TReg) -> String {
    match r {
        TReg::Slot(i) => format!("S{i}"),
        TReg::Scratch(0) => "eax".into(),
        TReg::Scratch(_) => "edx".into(),
    }
}

fn timm_text(i: &TImm) -> String {
    match i {
        TImm::Slot(j) => format!("I{j}"),
        TImm::Fixed(v) => format!("{v}"),
    }
}

fn operand_text(o: &TOperand) -> String {
    match o {
        TOperand::Reg(r) => treg_text(r),
        TOperand::Imm(i) => format!("${}", timm_text(i)),
        TOperand::Mem(m) => {
            let mut s = String::from("[");
            if let Some(b) = &m.base {
                s.push_str(&treg_text(b));
            }
            if let Some(i) = &m.index {
                s.push('+');
                s.push_str(&treg_text(i));
            }
            s.push(':');
            s.push_str(&timm_text(&m.disp));
            s.push(']');
            s
        }
    }
}

fn parse_treg(s: &str) -> Option<TReg> {
    match s {
        "eax" => Some(TReg::Scratch(0)),
        "edx" => Some(TReg::Scratch(1)),
        _ => s.strip_prefix('S')?.parse().ok().map(TReg::Slot),
    }
}

fn parse_timm(s: &str) -> Option<TImm> {
    if let Some(j) = s.strip_prefix('I') {
        return j.parse().ok().map(TImm::Slot);
    }
    s.parse().ok().map(TImm::Fixed)
}

fn parse_operand(s: &str) -> Option<TOperand> {
    if let Some(imm) = s.strip_prefix('$') {
        return parse_timm(imm).map(TOperand::Imm);
    }
    if let Some(body) = s.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let (regs, disp) = body.split_once(':')?;
        let (base, index) = match regs.split_once('+') {
            Some((b, i)) => (
                if b.is_empty() {
                    None
                } else {
                    Some(parse_treg(b)?)
                },
                Some(parse_treg(i)?),
            ),
            None => (
                if regs.is_empty() {
                    None
                } else {
                    Some(parse_treg(regs)?)
                },
                None,
            ),
        };
        return Some(TOperand::Mem(TMem {
            base,
            index,
            disp: parse_timm(disp)?,
        }));
    }
    parse_treg(s).map(TOperand::Reg)
}

fn template_inst_text(t: &TemplateInst) -> String {
    let mut s = t.op.mnemonic().to_string();
    if let Some(cc) = t.cc {
        s.push('.');
        s.push_str(&cc.to_string());
    }
    for (i, o) in t.operands.iter().enumerate() {
        s.push_str(if i == 0 { " " } else { ", " });
        s.push_str(&operand_text(o));
    }
    s
}

fn parse_template_inst(line: &str) -> Option<TemplateInst> {
    let (head, rest) = match line.find(' ') {
        Some(i) => (&line[..i], line[i + 1..].trim()),
        None => (line, ""),
    };
    let (mnemonic, cc) = match head.split_once('.') {
        Some((m, c)) => {
            let cc = Cc::ALL.iter().find(|x| x.to_string() == c)?;
            (m, Some(*cc))
        }
        None => (head, None),
    };
    let op = HOp::ALL.into_iter().find(|o| o.mnemonic() == mnemonic)?;
    let operands: Option<Vec<TOperand>> = if rest.is_empty() {
        Some(Vec::new())
    } else {
        rest.split(", ").map(parse_operand).collect()
    };
    Some(TemplateInst {
        op,
        cc,
        operands: operands?,
    })
}

fn key_text(key: &ComboKey) -> String {
    let modes: Vec<String> = key.modes.iter().map(mode_name).collect();
    let pat: Vec<String> = key.reg_pattern.iter().map(|p| p.to_string()).collect();
    format!(
        "{}|s={}|modes={}|pat={}",
        key.op.mnemonic(),
        u8::from(key.s),
        modes.join(","),
        pat.join(","),
    )
}

fn parse_key(text: &str, line: usize) -> Result<ComboKey, StoreError> {
    let err = |detail: String| StoreError {
        line: line + 1,
        detail,
    };
    let mut op = None;
    let mut s = false;
    let mut modes = Vec::new();
    let mut pat = Vec::new();
    for (i, field) in text.split('|').enumerate() {
        if i == 0 {
            op = GOp::ALL.into_iter().find(|o| o.mnemonic() == field);
            if op.is_none() {
                return Err(err(format!("unknown opcode `{field}`")));
            }
            continue;
        }
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| err(format!("bad field `{field}`")))?;
        match k {
            "s" => s = v == "1",
            "modes" => {
                for m in v.split(',').filter(|m| !m.is_empty()) {
                    modes.push(parse_mode(m).ok_or_else(|| err(format!("bad mode `{m}`")))?);
                }
            }
            "pat" => {
                for p in v.split(',').filter(|p| !p.is_empty()) {
                    pat.push(p.parse().map_err(|_| err(format!("bad pattern `{p}`")))?);
                }
            }
            other => return Err(err(format!("unknown key field `{other}`"))),
        }
    }
    Ok(ComboKey {
        op: op.expect("checked"),
        s,
        modes,
        reg_pattern: pat,
    })
}

fn entry_meta_text(entry: &RuleEntry) -> String {
    let flags: Vec<String> = entry
        .flags
        .iter()
        .map(|(f, e)| format!("{}:{}", flag_letter(*f), equiv_letter(*e)))
        .collect();
    let imms = match &entry.imm_constraint {
        None => "*".to_string(),
        Some(v) => v.iter().map(u32::to_string).collect::<Vec<_>>().join(","),
    };
    format!(
        "prov={}|flags={}|imms={}",
        prov_letter(entry.provenance),
        flags.join(","),
        imms
    )
}

/// Serializes a rule set to the text format.
#[must_use]
pub fn save_rules(rules: &RuleSet) -> String {
    let mut out = String::from("# pdbt rules v1\n");
    // Deterministic order for reproducible files.
    let mut entries: Vec<(&ComboKey, &RuleEntry)> = rules.iter().collect();
    entries.sort_by_key(|(k, _)| format!("{k}"));
    for (key, entry) in entries {
        out.push_str(&format!(
            "rule {}|{}\n",
            key_text(key),
            entry_meta_text(entry)
        ));
        for t in &entry.template {
            out.push_str("  ");
            out.push_str(&template_inst_text(t));
            out.push('\n');
        }
        out.push_str("end\n");
    }
    // Sequence rules.
    let mut seqs: Vec<(&Vec<ComboKey>, &RuleEntry)> = rules.iter_seq().collect();
    seqs.sort_by_key(|(ks, _)| {
        ks.iter()
            .map(|k| format!("{k}"))
            .collect::<Vec<_>>()
            .join(";")
    });
    for (keys, entry) in seqs {
        out.push_str(&format!("seq {}\n", entry_meta_text(entry)));
        for k in keys {
            out.push_str("  g ");
            out.push_str(&key_text(k));
            out.push('\n');
        }
        for t in &entry.template {
            out.push_str("  h ");
            out.push_str(&template_inst_text(t));
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

/// Parses a rule set from the text format.
///
/// # Errors
///
/// [`StoreError`] pinpointing the offending line.
pub fn load_rules(text: &str) -> Result<RuleSet, StoreError> {
    let err = |line: usize, detail: String| StoreError {
        line: line + 1,
        detail,
    };
    let mut out = RuleSet::new();
    let mut pending: Option<(ComboKey, RuleEntry)> = None;
    let mut pending_seq: Option<(Vec<ComboKey>, RuleEntry)> = None;
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("rule ") {
            if pending.is_some() || pending_seq.is_some() {
                return Err(err(no, "rule block not closed with `end`".into()));
            }
            // Split the key fields (first four) from the entry metadata.
            let fields: Vec<&str> = header.split('|').collect();
            if fields.len() < 7 {
                return Err(err(no, "truncated rule header".into()));
            }
            let key = parse_key(&fields[..4].join("|"), no)?;
            let entry = parse_entry_meta(&fields[4..].join("|"), no)?;
            pending = Some((key, entry));
        } else if let Some(meta) = line.strip_prefix("seq ") {
            if pending.is_some() || pending_seq.is_some() {
                return Err(err(no, "rule block not closed with `end`".into()));
            }
            pending_seq = Some((Vec::new(), parse_entry_meta(meta, no)?));
        } else if let Some(body) = line.strip_prefix("g ") {
            let (keys, _) = pending_seq
                .as_mut()
                .ok_or_else(|| err(no, "`g` line outside a seq block".into()))?;
            keys.push(parse_key(body.trim(), no)?);
        } else if let Some(body) = line.strip_prefix("h ") {
            let (_, entry) = pending_seq
                .as_mut()
                .ok_or_else(|| err(no, "`h` line outside a seq block".into()))?;
            let t = parse_template_inst(body.trim())
                .ok_or_else(|| err(no, format!("bad template instruction `{body}`")))?;
            entry.template.push(t);
        } else if line == "end" && pending_seq.is_some() {
            let (keys, entry) = pending_seq.take().expect("checked");
            if keys.len() < 2 || entry.template.is_empty() {
                return Err(err(no, "seq rule needs ≥2 keys and a template".into()));
            }
            out.insert_seq(keys, entry);
        } else if line == "end" {
            let (key, entry) = pending
                .take()
                .ok_or_else(|| err(no, "`end` without a rule".into()))?;
            if entry.template.is_empty() {
                return Err(err(no, "rule has an empty template".into()));
            }
            out.insert(key, entry);
        } else if let Some((_, entry)) = pending.as_mut() {
            let t = parse_template_inst(line)
                .ok_or_else(|| err(no, format!("bad template instruction `{line}`")))?;
            entry.template.push(t);
        } else {
            return Err(err(no, format!("unexpected line `{line}`")));
        }
    }
    if pending.is_some() || pending_seq.is_some() {
        return Err(StoreError {
            line: text.lines().count(),
            detail: "unterminated rule".into(),
        });
    }
    Ok(out)
}

/// One rule block (or stray line) rejected by [`load_rules_salvage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRule {
    /// 1-based line of the offending content (the block header for
    /// block-level failures, the exact line for parse errors).
    pub line: usize,
    /// Why the block was dropped.
    pub reason: String,
}

/// Parses a rule set in **salvage mode**: instead of failing the whole
/// store on the first malformed line, each `rule`/`seq` block is parsed
/// independently — a block that fails (malformed, truncated, or failed
/// by the `store` fault site) is quarantined with its line and reason
/// while every healthy block still loads. On a well-formed store this
/// returns exactly what [`load_rules`] returns, with no quarantines.
///
/// This is the production loading path (`pdbt run`/`stats` surface the
/// quarantine count in the `resilience` report section); the strict
/// [`load_rules`] remains for contexts where a corrupt store should be
/// a hard error.
#[must_use]
pub fn load_rules_salvage(text: &str) -> (RuleSet, Vec<QuarantinedRule>) {
    let mut out = RuleSet::new();
    let mut quarantined = Vec::new();
    // Block collector: `start` is the 0-based header line of the block
    // being collected, `block` its raw lines (header included).
    let mut start: Option<usize> = None;
    let mut block: Vec<&str> = Vec::new();
    let finish = |start: usize,
                  block: &[&str],
                  out: &mut RuleSet,
                  quarantined: &mut Vec<QuarantinedRule>| {
        if pdbt_faults::hit_with(pdbt_faults::Site::Store, || start as u64 + 1) {
            quarantined.push(QuarantinedRule {
                line: start + 1,
                reason: "injected fault: store entry corrupted".into(),
            });
            return;
        }
        // Each block reuses the strict parser, so salvage and strict
        // semantics can never drift; error lines are block-relative and
        // rebased onto the block's position in the file.
        match load_rules(&block.join("\n")) {
            Ok(rules) => {
                out.merge(rules);
            }
            Err(e) => quarantined.push(QuarantinedRule {
                line: start + e.line,
                reason: e.detail,
            }),
        }
    };
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let is_header = line.starts_with("rule ") || line.starts_with("seq ");
        match start {
            Some(s) if is_header => {
                // A new header before `end`: the open block is
                // unterminated. Quarantine it and start fresh.
                quarantined.push(QuarantinedRule {
                    line: s + 1,
                    reason: "rule block not closed with `end`".into(),
                });
                start = Some(no);
                block = vec![raw];
            }
            Some(s) => {
                block.push(raw);
                if line == "end" {
                    finish(s, &block, &mut out, &mut quarantined);
                    start = None;
                    block.clear();
                }
            }
            None if is_header => {
                start = Some(no);
                block = vec![raw];
            }
            None => {
                if !line.is_empty() && !line.starts_with('#') {
                    quarantined.push(QuarantinedRule {
                        line: no + 1,
                        reason: format!("unexpected line `{line}`"),
                    });
                }
            }
        }
    }
    if let Some(s) = start {
        quarantined.push(QuarantinedRule {
            line: s + 1,
            reason: "unterminated rule".into(),
        });
    }
    (out, quarantined)
}

fn parse_entry_meta(text: &str, line: usize) -> Result<RuleEntry, StoreError> {
    let err = |detail: String| StoreError {
        line: line + 1,
        detail,
    };
    let mut prov = Provenance::Learned;
    let mut flags = Vec::new();
    let mut imms = None;
    for field in text.split('|') {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| err(format!("bad field `{field}`")))?;
        match k {
            "prov" => {
                prov = v
                    .chars()
                    .next()
                    .and_then(parse_prov)
                    .ok_or_else(|| err(format!("bad provenance `{v}`")))?;
            }
            "flags" => {
                for pair in v.split(',').filter(|p| !p.is_empty()) {
                    let mut cs = pair.chars();
                    let f = cs
                        .next()
                        .and_then(parse_flag)
                        .ok_or_else(|| err(format!("bad flag `{pair}`")))?;
                    let e = cs
                        .nth(1)
                        .and_then(parse_equiv)
                        .ok_or_else(|| err(format!("bad flag `{pair}`")))?;
                    flags.push((f, e));
                }
            }
            "imms" => {
                imms = if v == "*" {
                    None
                } else {
                    let vals: Result<Vec<u32>, _> = v.split(',').map(str::parse).collect();
                    Some(vals.map_err(|_| err(format!("bad imms `{v}`")))?)
                };
            }
            other => return Err(err(format!("unknown field `{other}`"))),
        }
    }
    Ok(RuleEntry {
        template: Vec::new(),
        flags,
        provenance: prov,
        imm_constraint: imms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit_for;
    use crate::key::parameterize;
    use crate::ruleset::verify_combo;
    use pdbt_isa_arm::{builders as g, MemAddr, Operand as O, Reg};
    use pdbt_symexec::CheckOptions;

    fn sample_rules() -> RuleSet {
        let mut rs = RuleSet::new();
        for inst in [
            g::add(Reg::R4, Reg::R4, O::Imm(5)),
            g::eor(Reg::R4, Reg::R5, O::Reg(Reg::R6)),
            g::bic(Reg::R4, Reg::R4, O::Reg(Reg::R5)),
            g::sub(
                Reg::R4,
                Reg::R5,
                O::Shifted {
                    rm: Reg::R6,
                    kind: ShiftKind::Asr,
                    amount: 3,
                },
            ),
            g::cmp(Reg::R4, O::Reg(Reg::R5)),
            g::ldrb(
                Reg::R4,
                MemAddr::BaseReg {
                    base: Reg::R5,
                    index: Reg::R6,
                },
            ),
            g::str_(
                Reg::R4,
                MemAddr::BaseImm {
                    base: Reg::R5,
                    offset: 8,
                },
            ),
            g::add(Reg::R4, Reg::R4, O::Imm(1)).with_s(),
        ] {
            let p = parameterize(&inst).unwrap();
            let template = emit_for(&p.key).unwrap();
            let flags = verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
            rs.insert(
                p.key,
                RuleEntry {
                    template,
                    flags,
                    provenance: Provenance::Learned,
                    imm_constraint: None,
                },
            );
        }
        rs
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let rules = sample_rules();
        let text = save_rules(&rules);
        let back = load_rules(&text).expect("loads");
        assert_eq!(back.len(), rules.len());
        for (key, entry) in rules.iter() {
            let loaded = back.get(key).unwrap_or_else(|| panic!("missing {key}"));
            assert_eq!(loaded, entry, "entry for {key}");
        }
        // And the reloaded file serializes identically (canonical order).
        assert_eq!(save_rules(&back), text);
    }

    #[test]
    fn roundtrip_imm_constraint_and_provenance() {
        let mut rules = RuleSet::new();
        let p = parameterize(&g::add(Reg::R4, Reg::R4, O::Imm(5))).unwrap();
        let template = emit_for(&p.key).unwrap();
        rules.insert(
            p.key,
            RuleEntry {
                template,
                flags: vec![(Flag::C, FlagEquiv::Inverted)],
                provenance: Provenance::AddrModeDerived,
                imm_constraint: Some(vec![5, 12]),
            },
        );
        let back = load_rules(&save_rules(&rules)).unwrap();
        let (_, e) = back.iter().next().unwrap();
        assert_eq!(e.provenance, Provenance::AddrModeDerived);
        assert_eq!(e.imm_constraint, Some(vec![5, 12]));
        assert_eq!(e.flags, vec![(Flag::C, FlagEquiv::Inverted)]);
    }

    #[test]
    fn reloaded_rules_still_translate() {
        use crate::template::HostLoc;
        let rules = load_rules(&save_rules(&sample_rules())).unwrap();
        let m = rules
            .lookup(&g::eor(Reg::R9, Reg::R10, O::Reg(Reg::R11)))
            .expect("matches");
        let code = rules
            .instantiate_match(
                &m,
                &[
                    HostLoc::Reg(pdbt_isa_x86::Reg::Ecx),
                    HostLoc::Reg(pdbt_isa_x86::Reg::Ebx),
                    HostLoc::Reg(pdbt_isa_x86::Reg::Esi),
                ],
            )
            .unwrap();
        assert!(!code.is_empty());
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(load_rules("bogus line").unwrap_err().line == 1);
        let e = load_rules(
            "rule add|s=0|modes=reg,reg,imm|pat=0,0,1|prov=L|flags=|imms=*\n  zorkl S0\nend",
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
        let e = load_rules("rule add|s=0|modes=reg|pat=0|prov=L|flags=|imms=*\n").unwrap_err();
        assert!(e.detail.contains("unterminated"));
        let e = load_rules("rule nope|s=0|modes=|pat=|prov=L|flags=|imms=*\nend").unwrap_err();
        assert!(e.detail.contains("unknown opcode"));
    }

    #[test]
    fn sequence_rules_roundtrip() {
        use crate::ruleset::verify_seq;
        let seq = [
            g::mov(Reg::R4, O::Imm(5)),
            g::add(Reg::R5, Reg::R5, O::Reg(Reg::R4)),
        ];
        let (keys, concrete) = crate::key::parameterize_seq(&seq).unwrap();
        let host = [
            pdbt_isa_x86::builders::mov(
                pdbt_isa_x86::Reg::Ecx.into(),
                pdbt_isa_x86::Operand::Imm(5),
            ),
            pdbt_isa_x86::builders::add(
                pdbt_isa_x86::Reg::Ebx.into(),
                pdbt_isa_x86::Reg::Ecx.into(),
            ),
        ];
        let slot_of = |r: pdbt_isa_x86::Reg| match r {
            pdbt_isa_x86::Reg::Ecx => Some(0u8),
            pdbt_isa_x86::Reg::Ebx => Some(1),
            _ => None,
        };
        let tmpl = crate::template::extract(&host, &slot_of, &concrete.imms).unwrap();
        let flags = verify_seq(&keys, &tmpl, 2, CheckOptions::default()).unwrap();
        let mut rules = sample_rules();
        rules.insert_seq(
            keys.clone(),
            RuleEntry {
                template: tmpl,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None,
            },
        );
        let text = save_rules(&rules);
        assert!(text.contains("seq "), "{text}");
        let back = load_rules(&text).expect("loads");
        assert_eq!(back.seq_len(), 1);
        assert_eq!(back.len(), rules.len());
        let renamed = [
            g::mov(Reg::R8, O::Imm(7)),
            g::add(Reg::R9, Reg::R9, O::Reg(Reg::R8)),
        ];
        assert!(
            back.lookup_seq(&renamed).is_some(),
            "reloaded sequence rule matches"
        );
        assert_eq!(save_rules(&back), text, "canonical reserialization");
    }

    #[test]
    fn salvage_matches_strict_on_healthy_stores() {
        let rules = sample_rules();
        let text = save_rules(&rules);
        let (back, quarantined) = load_rules_salvage(&text);
        assert!(quarantined.is_empty(), "{quarantined:?}");
        assert_eq!(save_rules(&back), text);
    }

    #[test]
    fn salvage_quarantines_only_the_corrupt_block() {
        let rules = sample_rules();
        let text = save_rules(&rules);
        // Corrupt the template line of the *second* rule block.
        let target_header = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.starts_with("rule "))
            .nth(1)
            .expect("second rule block")
            .0;
        let mutated: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(no, l)| {
                if no == target_header + 1 {
                    "  zorkl S0, S1".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect();
        let (back, quarantined) = load_rules_salvage(&mutated.join("\n"));
        assert_eq!(back.len(), rules.len() - 1, "one block lost, rest loaded");
        assert_eq!(quarantined.len(), 1, "{quarantined:?}");
        assert_eq!(quarantined[0].line, target_header + 2, "1-based bad line");
        assert!(
            quarantined[0].reason.contains("bad template instruction"),
            "{quarantined:?}"
        );
    }

    #[test]
    fn salvage_handles_unterminated_and_stray_lines() {
        let rules = sample_rules();
        let mut text = String::from("stray garbage\n");
        text.push_str(&save_rules(&rules));
        // Truncate the final `end`, leaving the last block open.
        let text = text.trim_end().strip_suffix("end").unwrap().to_string();
        let (back, quarantined) = load_rules_salvage(&text);
        assert_eq!(back.len(), rules.len() - 1);
        assert_eq!(quarantined.len(), 2, "{quarantined:?}");
        assert!(quarantined[0].reason.contains("unexpected line"));
        assert!(quarantined[1].reason.contains("unterminated"));
        // A header opening before the previous block closed quarantines
        // the open block, not the new one.
        let (back, quarantined) = load_rules_salvage(
            "rule add|s=0|modes=reg,reg,imm|pat=0,0,1|prov=L|flags=|imms=*\n\
             rule eor|s=0|modes=reg,reg,reg|pat=0,1,2|prov=L|flags=|imms=*\n  \
             movl S0, S1\n  xorl S0, S2\nend\n",
        );
        assert_eq!(back.len(), 1, "the well-formed eor block loads");
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].line, 1);
        assert!(quarantined[0].reason.contains("not closed"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let rules = sample_rules();
        let mut text = String::from("# header\n\n");
        text.push_str(&save_rules(&rules));
        text.push_str("\n# trailing\n");
        assert_eq!(load_rules(&text).unwrap().len(), rules.len());
    }
}
