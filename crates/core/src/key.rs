//! Guest-instruction parameterization: canonical combo keys.
//!
//! "When a guest instruction is being translated, it is first
//! parameterized to retrieve the rules for translation" (paper §IV-D).
//! [`parameterize`] strips a guest instruction down to its *combo key* —
//! opcode, set-flags bit, per-operand addressing-mode tags, and the
//! operand dependence pattern (paper Fig 8) — plus the concrete register
//! and immediate values needed to instantiate a matched rule.

use pdbt_isa_arm::{Inst, MemAddr, Op, Operand, Reg, ShiftKind};
use std::fmt;

/// Addressing-mode tag of one operand position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModeTag {
    /// A register.
    Reg,
    /// An immediate (value becomes an immediate slot).
    Imm,
    /// A barrel-shifted register (amount becomes an immediate slot).
    Shifted(ShiftKind),
    /// `[base, #disp]` memory (disp becomes an immediate slot).
    MemBaseImm,
    /// `[base, index]` memory.
    MemBaseReg,
    /// A branch target / register list — not parameterizable.
    Opaque,
}

impl fmt::Display for ModeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeTag::Reg => f.write_str("reg"),
            ModeTag::Imm => f.write_str("imm"),
            ModeTag::Shifted(k) => write!(f, "sreg-{k}"),
            ModeTag::MemBaseImm => f.write_str("mem-bi"),
            ModeTag::MemBaseReg => f.write_str("mem-br"),
            ModeTag::Opaque => f.write_str("opaque"),
        }
    }
}

/// The canonical shape of one guest instruction: everything about it
/// except *which* registers and immediates it names.
///
/// `reg_pattern` lists, for every register mention in operand-scan
/// order, the *slot index* it resolves to — so `add r0, r0, r1` has
/// pattern `[0, 0, 1]` and `add r2, r0, r1` has `[0, 1, 2]`, distinct
/// keys with distinct (aux-move-bearing) templates, which is how the
/// paper's dependence constraints (§IV-C2, Fig 8) are enforced.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComboKey {
    /// The opcode.
    pub op: Op,
    /// The set-flags bit.
    pub s: bool,
    /// Addressing-mode tag per operand position.
    pub modes: Vec<ModeTag>,
    /// Slot index per register mention (scan order).
    pub reg_pattern: Vec<u8>,
}

impl fmt::Display for ComboKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.op, if self.s { "s" } else { "" })?;
        for m in &self.modes {
            write!(f, " {m}")?;
        }
        write!(f, " /")?;
        for p in &self.reg_pattern {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// The concrete part of a parameterized guest instruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instantiation {
    /// Slot index → guest register.
    pub slots: Vec<Reg>,
    /// Immediate slot index → value (op2 immediates, shift amounts,
    /// memory displacements, in scan order).
    pub imms: Vec<u32>,
}

/// The result of parameterizing one guest instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parameterized {
    /// The canonical key.
    pub key: ComboKey,
    /// The concrete registers and immediates.
    pub inst: Instantiation,
}

struct Builder {
    modes: Vec<ModeTag>,
    reg_pattern: Vec<u8>,
    slots: Vec<Reg>,
    imms: Vec<u32>,
    opaque: bool,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            modes: Vec::new(),
            reg_pattern: Vec::new(),
            slots: Vec::new(),
            imms: Vec::new(),
            opaque: false,
        }
    }

    fn reg(&mut self, r: Reg) {
        let idx = match self.slots.iter().position(|s| *s == r) {
            Some(i) => i,
            None => {
                self.slots.push(r);
                self.slots.len() - 1
            }
        };
        self.reg_pattern.push(idx as u8);
    }

    fn operand(&mut self, o: &Operand) {
        match o {
            Operand::Reg(r) => {
                self.modes.push(ModeTag::Reg);
                self.reg(*r);
            }
            Operand::Imm(v) => {
                self.modes.push(ModeTag::Imm);
                self.imms.push(*v);
            }
            Operand::Shifted { rm, kind, amount } => {
                self.modes.push(ModeTag::Shifted(*kind));
                self.reg(*rm);
                self.imms.push(u32::from(*amount));
            }
            Operand::Mem(MemAddr::BaseImm { base, offset }) => {
                self.modes.push(ModeTag::MemBaseImm);
                self.reg(*base);
                self.imms.push(*offset as u32);
            }
            Operand::Mem(MemAddr::BaseReg { base, index }) => {
                self.modes.push(ModeTag::MemBaseReg);
                self.reg(*base);
                self.reg(*index);
            }
            Operand::FReg(_) | Operand::RegList(_) | Operand::Target(_) => {
                self.modes.push(ModeTag::Opaque);
                self.opaque = true;
            }
        }
    }
}

/// Parameterizes a guest instruction into its combo key and concrete
/// instantiation. Returns `None` for instructions outside the
/// rule-translatable universe (branches, stack ops, predicated
/// execution, system calls, floating point, PC-mentioning operands —
/// the paper's Fig 9 constraint).
#[must_use]
pub fn parameterize(inst: &Inst) -> Option<Parameterized> {
    if inst.cond != pdbt_isa::Cond::Al {
        return None;
    }
    if matches!(
        inst.op,
        Op::B | Op::Bl | Op::Bx | Op::Push | Op::Pop | Op::Svc
    ) {
        return None;
    }
    let mut b = Builder::new();
    for o in &inst.operands {
        b.operand(o);
    }
    if b.opaque || b.slots.iter().any(|r| r.is_pc()) {
        return None;
    }
    Some(Parameterized {
        key: ComboKey {
            op: inst.op,
            s: inst.s,
            modes: b.modes,
            reg_pattern: b.reg_pattern,
        },
        inst: Instantiation {
            slots: b.slots,
            imms: b.imms,
        },
    })
}

/// Reconstructs a concrete guest instruction from a key and an
/// instantiation — the inverse of [`parameterize`], used to build
/// verification instances of derived rules (paper §IV-C: "we first
/// instantiate all possible derived rules from the parameterized rule,
/// and verify each").
///
/// Returns `None` if the slot/immediate counts do not fit the key.
#[must_use]
pub fn reconstruct(key: &ComboKey, inst: &Instantiation) -> Option<Inst> {
    let mut regs = inst.slots.iter();
    let mut pattern = key.reg_pattern.iter();
    let mut imms = inst.imms.iter();
    let _ = &mut regs;
    let mut next_reg = || -> Option<Reg> {
        let slot = *pattern.next()?;
        inst.slots.get(slot as usize).copied()
    };
    let mut operands = Vec::with_capacity(key.modes.len());
    for m in &key.modes {
        let o = match m {
            ModeTag::Reg => Operand::Reg(next_reg()?),
            ModeTag::Imm => Operand::Imm(*imms.next()?),
            ModeTag::Shifted(kind) => {
                let rm = next_reg()?;
                let amount = *imms.next()? as u8;
                Operand::Shifted {
                    rm,
                    kind: *kind,
                    amount,
                }
            }
            ModeTag::MemBaseImm => {
                let base = next_reg()?;
                let offset = *imms.next()? as i32;
                Operand::Mem(MemAddr::BaseImm { base, offset })
            }
            ModeTag::MemBaseReg => {
                let base = next_reg()?;
                let index = next_reg()?;
                Operand::Mem(MemAddr::BaseReg { base, index })
            }
            ModeTag::Opaque => return None,
        };
        operands.push(o);
    }
    let mut out = Inst::new(key.op, operands).ok()?;
    if key.s {
        if !key.op.supports_s() {
            return None;
        }
        out = out.with_s();
    }
    Some(out)
}

/// The number of register slots a key binds.
#[must_use]
pub fn slot_count(key: &ComboKey) -> usize {
    key.reg_pattern
        .iter()
        .map(|p| *p as usize + 1)
        .max()
        .unwrap_or(0)
}

/// The number of immediate slots a key binds.
#[must_use]
pub fn imm_count(key: &ComboKey) -> usize {
    key.modes
        .iter()
        .filter(|m| matches!(m, ModeTag::Imm | ModeTag::Shifted(_) | ModeTag::MemBaseImm))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_arm::builders::*;

    #[test]
    fn rmw_and_distinct_have_different_keys() {
        let rmw = parameterize(&add(Reg::R0, Reg::R0, Operand::Reg(Reg::R1))).unwrap();
        let distinct = parameterize(&add(Reg::R2, Reg::R0, Operand::Reg(Reg::R1))).unwrap();
        assert_eq!(rmw.key.reg_pattern, vec![0, 0, 1]);
        assert_eq!(distinct.key.reg_pattern, vec![0, 1, 2]);
        assert_ne!(rmw.key, distinct.key);
        // Same key regardless of which registers are named.
        let rmw2 = parameterize(&add(Reg::R7, Reg::R7, Operand::Reg(Reg::R3))).unwrap();
        assert_eq!(rmw.key, rmw2.key);
        assert_eq!(rmw2.inst.slots, vec![Reg::R7, Reg::R3]);
    }

    #[test]
    fn immediates_become_slots() {
        let p = parameterize(&add(Reg::R0, Reg::R1, Operand::Imm(42))).unwrap();
        assert_eq!(p.key.modes, vec![ModeTag::Reg, ModeTag::Reg, ModeTag::Imm]);
        assert_eq!(p.inst.imms, vec![42]);
        // Different immediate, same key.
        let q = parameterize(&add(Reg::R0, Reg::R1, Operand::Imm(7))).unwrap();
        assert_eq!(p.key, q.key);
    }

    #[test]
    fn shifted_and_memory_modes() {
        let p = parameterize(&add(
            Reg::R0,
            Reg::R1,
            Operand::Shifted {
                rm: Reg::R2,
                kind: ShiftKind::Lsl,
                amount: 3,
            },
        ))
        .unwrap();
        assert_eq!(p.key.modes[2], ModeTag::Shifted(ShiftKind::Lsl));
        assert_eq!(p.inst.imms, vec![3]);

        let p = parameterize(&ldr(
            Reg::R0,
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: -4,
            },
        ))
        .unwrap();
        assert_eq!(p.key.modes, vec![ModeTag::Reg, ModeTag::MemBaseImm]);
        assert_eq!(p.inst.imms, vec![(-4i32) as u32]);

        let p = parameterize(&str_(
            Reg::R0,
            MemAddr::BaseReg {
                base: Reg::R1,
                index: Reg::R2,
            },
        ))
        .unwrap();
        assert_eq!(p.key.modes, vec![ModeTag::Reg, ModeTag::MemBaseReg]);
        assert_eq!(p.key.reg_pattern, vec![0, 1, 2]);
    }

    #[test]
    fn excluded_instructions() {
        assert!(parameterize(&b(pdbt_isa::Cond::Al, 8)).is_none());
        assert!(parameterize(&bl(8)).is_none());
        assert!(parameterize(&push([Reg::R4])).is_none());
        assert!(parameterize(&svc(0)).is_none());
        assert!(
            parameterize(&mov(Reg::R0, Operand::Imm(1)).with_cond(pdbt_isa::Cond::Eq)).is_none()
        );
        // PC-mentioning operands are constrained out (Fig 9).
        assert!(parameterize(&ldr(
            Reg::R0,
            MemAddr::BaseImm {
                base: Reg::Pc,
                offset: 8
            }
        ))
        .is_none());
    }

    #[test]
    fn s_bit_distinguishes_keys() {
        let plain = parameterize(&add(Reg::R0, Reg::R0, Operand::Imm(1))).unwrap();
        let s = parameterize(&add(Reg::R0, Reg::R0, Operand::Imm(1)).with_s()).unwrap();
        assert_ne!(plain.key, s.key);
        assert!(s.key.s);
    }

    #[test]
    fn reconstruct_roundtrips() {
        let cases = vec![
            add(Reg::R0, Reg::R0, Operand::Reg(Reg::R1)),
            add(Reg::R2, Reg::R0, Operand::Imm(5)).with_s(),
            eor(
                Reg::R3,
                Reg::R3,
                Operand::Shifted {
                    rm: Reg::R4,
                    kind: ShiftKind::Asr,
                    amount: 7,
                },
            ),
            mov(Reg::R1, Operand::Imm(0)),
            mvn(Reg::R1, Operand::Reg(Reg::R2)),
            cmp(Reg::R5, Operand::Imm(10)),
            ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 16,
                },
            ),
            ldrb(
                Reg::R0,
                MemAddr::BaseReg {
                    base: Reg::R1,
                    index: Reg::R2,
                },
            ),
            strh(
                Reg::R6,
                MemAddr::BaseImm {
                    base: Reg::Sp,
                    offset: 2,
                },
            ),
            mul(Reg::R0, Reg::R1, Reg::R2),
            mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            clz(Reg::R0, Reg::R1),
        ];
        for inst in cases {
            let p = parameterize(&inst).unwrap_or_else(|| panic!("parameterize {inst}"));
            let back = reconstruct(&p.key, &p.inst).unwrap_or_else(|| panic!("reconstruct {inst}"));
            assert_eq!(back, inst, "roundtrip of {inst}");
        }
    }

    #[test]
    fn reconstruct_with_fresh_registers() {
        // The whole point: instantiate a key with registers never seen in
        // training.
        let p = parameterize(&add(Reg::R0, Reg::R0, Operand::Reg(Reg::R1))).unwrap();
        let fresh = Instantiation {
            slots: vec![Reg::R9, Reg::R10],
            imms: vec![],
        };
        let inst = reconstruct(&p.key, &fresh).unwrap();
        assert_eq!(inst, add(Reg::R9, Reg::R9, Operand::Reg(Reg::R10)));
    }

    #[test]
    fn slot_and_imm_counts() {
        let p = parameterize(&add(Reg::R2, Reg::R0, Operand::Imm(5))).unwrap();
        assert_eq!(slot_count(&p.key), 2);
        assert_eq!(imm_count(&p.key), 1);
        let p = parameterize(&str_(
            Reg::R0,
            MemAddr::BaseReg {
                base: Reg::R1,
                index: Reg::R2,
            },
        ))
        .unwrap();
        assert_eq!(slot_count(&p.key), 3);
        assert_eq!(imm_count(&p.key), 0);
    }

    #[test]
    fn reconstruct_rejects_bad_shapes() {
        let p = parameterize(&add(Reg::R0, Reg::R0, Operand::Imm(1))).unwrap();
        // Too few slots.
        assert!(reconstruct(
            &p.key,
            &Instantiation {
                slots: vec![],
                imms: vec![1]
            }
        )
        .is_none());
        // Too few immediates.
        assert!(reconstruct(
            &p.key,
            &Instantiation {
                slots: vec![Reg::R0],
                imms: vec![]
            }
        )
        .is_none());
    }
}

/// Parameterizes a short *sequence* of guest instructions as one unit:
/// register slots and immediate slots are numbered across the whole
/// sequence, so `Vec<ComboKey>` (whose `reg_pattern`s index the shared
/// slots) is the canonical sequence key. Learned sequence rules use
/// this; per §V-D they are matched as-is and never parameterized.
#[must_use]
pub fn parameterize_seq(insts: &[Inst]) -> Option<(Vec<ComboKey>, Instantiation)> {
    if insts.is_empty() {
        return None;
    }
    let mut b = Builder::new();
    let mut keys = Vec::with_capacity(insts.len());
    for inst in insts {
        if inst.cond != pdbt_isa::Cond::Al {
            return None;
        }
        if matches!(
            inst.op,
            Op::B | Op::Bl | Op::Bx | Op::Push | Op::Pop | Op::Svc
        ) {
            return None;
        }
        let modes_start = b.modes.len();
        let pattern_start = b.reg_pattern.len();
        for o in &inst.operands {
            b.operand(o);
        }
        keys.push(ComboKey {
            op: inst.op,
            s: inst.s,
            modes: b.modes[modes_start..].to_vec(),
            reg_pattern: b.reg_pattern[pattern_start..].to_vec(),
        });
    }
    if b.opaque || b.slots.iter().any(|r| r.is_pc()) {
        return None;
    }
    Some((
        keys,
        Instantiation {
            slots: b.slots,
            imms: b.imms,
        },
    ))
}

/// A single-pass incremental [`parameterize_seq`]: scans the longest
/// clean prefix of a window once, recording per-length checkpoints so a
/// caller probing every candidate length (longest-first sequence
/// lookup) can slice the key/immediate prefix instead of re-running the
/// whole parameterization per length.
///
/// This is sound because sequence parameterization is prefix-stable:
/// slots are numbered by first appearance and immediates appended in
/// scan order, so the keys and instantiation of `insts[..len]` are
/// literal prefixes of those of the full window; and every rejection
/// (predication, banned opcode, opaque operand, PC slot) is pinned to
/// the instruction that introduces it, so validity is monotone in the
/// prefix length.
#[derive(Debug)]
pub struct SeqScan {
    keys: Vec<ComboKey>,
    slots: Vec<Reg>,
    imms: Vec<u32>,
    /// `slot_marks[i]` / `imm_marks[i]`: slot / immediate counts after
    /// the first `i + 1` instructions.
    slot_marks: Vec<usize>,
    imm_marks: Vec<usize>,
}

impl SeqScan {
    /// Scans at most `max_len` instructions, stopping at the first one
    /// that would make the prefix unparameterizable.
    #[must_use]
    pub fn scan(insts: &[Inst], max_len: usize) -> SeqScan {
        let n = insts.len().min(max_len);
        let mut b = Builder::new();
        let mut out = SeqScan {
            keys: Vec::with_capacity(n),
            slots: Vec::new(),
            imms: Vec::new(),
            slot_marks: Vec::with_capacity(n),
            imm_marks: Vec::with_capacity(n),
        };
        for inst in &insts[..n] {
            if inst.cond != pdbt_isa::Cond::Al
                || matches!(
                    inst.op,
                    Op::B | Op::Bl | Op::Bx | Op::Push | Op::Pop | Op::Svc
                )
            {
                break;
            }
            let modes_start = b.modes.len();
            let pattern_start = b.reg_pattern.len();
            let slots_start = b.slots.len();
            for o in &inst.operands {
                b.operand(o);
            }
            // Opaque operands and PC slots invalidate the prefix from
            // the instruction that introduces them (a PC slot seen
            // earlier would already have stopped the scan).
            if b.opaque || b.slots[slots_start..].iter().any(|r| r.is_pc()) {
                break;
            }
            out.keys.push(ComboKey {
                op: inst.op,
                s: inst.s,
                modes: b.modes[modes_start..].to_vec(),
                reg_pattern: b.reg_pattern[pattern_start..].to_vec(),
            });
            out.slot_marks.push(b.slots.len());
            out.imm_marks.push(b.imms.len());
        }
        out.slots = b.slots;
        out.imms = b.imms;
        out.slots
            .truncate(out.slot_marks.last().copied().unwrap_or(0));
        out.imms
            .truncate(out.imm_marks.last().copied().unwrap_or(0));
        out
    }

    /// Longest prefix length that parameterizes cleanly.
    #[must_use]
    pub fn valid_len(&self) -> usize {
        self.keys.len()
    }

    /// The sequence key of the first `len` instructions
    /// (`len <= valid_len`).
    #[must_use]
    pub fn keys(&self, len: usize) -> &[ComboKey] {
        &self.keys[..len]
    }

    /// The immediates consumed by the first `len` instructions.
    #[must_use]
    pub fn imms(&self, len: usize) -> &[u32] {
        &self.imms[..self.imm_marks[len - 1]]
    }

    /// The concrete instantiation of the first `len` instructions —
    /// identical to what `parameterize_seq(&insts[..len])` returns.
    #[must_use]
    pub fn instantiation(&self, len: usize) -> Instantiation {
        Instantiation {
            slots: self.slots[..self.slot_marks[len - 1]].to_vec(),
            imms: self.imms(len).to_vec(),
        }
    }
}

/// Reconstructs a concrete instruction sequence from a sequence key —
/// the inverse of [`parameterize_seq`].
#[must_use]
pub fn reconstruct_seq(keys: &[ComboKey], inst: &Instantiation) -> Option<Vec<Inst>> {
    let mut out = Vec::with_capacity(keys.len());
    let mut imm_cursor = 0usize;
    for key in keys {
        let n_imms = imm_count(key);
        let sub = Instantiation {
            slots: inst.slots.clone(),
            imms: inst.imms.get(imm_cursor..imm_cursor + n_imms)?.to_vec(),
        };
        imm_cursor += n_imms;
        out.push(reconstruct(key, &sub)?);
    }
    (imm_cursor == inst.imms.len()).then_some(out)
}

#[cfg(test)]
mod seq_tests {
    use super::*;
    use pdbt_isa_arm::builders::*;

    #[test]
    fn sequence_slots_are_shared() {
        let seq = [
            add(Reg::R4, Reg::R4, Operand::Reg(Reg::R5)),
            eor(Reg::R6, Reg::R4, Operand::Imm(7)),
        ];
        let (keys, inst) = parameterize_seq(&seq).unwrap();
        assert_eq!(keys.len(), 2);
        // r4 appears in both instructions under one slot index.
        assert_eq!(inst.slots, vec![Reg::R4, Reg::R5, Reg::R6]);
        assert_eq!(keys[0].reg_pattern, vec![0, 0, 1]);
        assert_eq!(keys[1].reg_pattern, vec![2, 0]);
        assert_eq!(inst.imms, vec![7]);
        // Renaming registers consistently produces the same key.
        let renamed = [
            add(Reg::R8, Reg::R8, Operand::Reg(Reg::R9)),
            eor(Reg::R10, Reg::R8, Operand::Imm(3)),
        ];
        let (keys2, _) = parameterize_seq(&renamed).unwrap();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn sequence_roundtrips() {
        let seq = vec![
            mov(Reg::R4, Operand::Imm(10)),
            add(Reg::R5, Reg::R4, Operand::Imm(3)),
            str_(
                Reg::R5,
                MemAddr::BaseImm {
                    base: Reg::R6,
                    offset: 8,
                },
            ),
        ];
        let (keys, inst) = parameterize_seq(&seq).unwrap();
        let back = reconstruct_seq(&keys, &inst).unwrap();
        assert_eq!(back, seq);
        // Fresh registers and immediates instantiate the same shape.
        let fresh = Instantiation {
            slots: vec![Reg::R7, Reg::R8, Reg::R9],
            imms: vec![1, 2, 4],
        };
        let derived = reconstruct_seq(&keys, &fresh).unwrap();
        assert_eq!(derived[0], mov(Reg::R7, Operand::Imm(1)));
        assert_eq!(derived[1], add(Reg::R8, Reg::R7, Operand::Imm(2)));
        assert_eq!(
            derived[2],
            str_(
                Reg::R8,
                MemAddr::BaseImm {
                    base: Reg::R9,
                    offset: 4
                }
            )
        );
    }

    #[test]
    fn sequences_with_control_flow_rejected() {
        let seq = [mov(Reg::R4, Operand::Imm(1)), b(pdbt_isa::Cond::Al, 8)];
        assert!(parameterize_seq(&seq).is_none());
    }
}
