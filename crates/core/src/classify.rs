//! Instruction-subgroup classification (paper §IV-A).
//!
//! Instructions are classified first by data type, then by encoding
//! format and operation category. All instructions in a subgroup share
//! one pseudo opcode and parameterize against each other; each guest
//! subgroup has a corresponding set of host opcodes reached through the
//! per-opcode *host counterpart* table (with the operand transform that
//! turns a complex opcode into its simple partner, §IV-C1).

use pdbt_isa::{DataType, EncodingFormat, OpCategory};
use pdbt_isa_arm::{Op as GOp, OperandTransform, Shape};
use pdbt_isa_x86::Op as HOp;
use std::fmt;

/// A classification subgroup: (data type, encoding format, operation
/// category, operand shape). The shape component enforces the "same
/// encoding format" guideline at operand-count granularity (`mul` and
/// `mla` share the multiply format but not a shape, so they do not
/// parameterize into each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subgroup {
    /// Data type (axis 1).
    pub data_type: DataType,
    /// Encoding format (axis 2, guideline 1).
    pub format: EncodingFormat,
    /// Operation category (axis 2, guideline 2).
    pub category: OpCategory,
    /// Operand-shape discriminant.
    shape_tag: u8,
}

impl fmt::Display for Subgroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.data_type, self.format, self.category)
    }
}

fn shape_tag(s: Shape) -> u8 {
    // Any stable injection works; derive an index from a match to stay
    // robust against enum reordering.
    match s {
        Shape::Dp3 => 0,
        Shape::Dp2 => 1,
        Shape::Unary2 => 2,
        Shape::Mul3 => 3,
        Shape::Mul4 => 4,
        Shape::Cmp2 => 5,
        Shape::LdSt => 6,
        Shape::Stack => 7,
        Shape::Branch => 8,
        Shape::BranchReg => 9,
        Shape::Sys => 10,
        Shape::Vfp3 => 11,
        Shape::Vfp2 => 12,
        Shape::VfpLdSt => 13,
    }
}

/// The subgroup of a guest opcode.
#[must_use]
pub fn subgroup_of(op: GOp) -> Subgroup {
    Subgroup {
        data_type: op.data_type(),
        format: op.format(),
        category: op.category(),
        shape_tag: shape_tag(op.shape()),
    }
}

/// A dense pseudo-opcode id for a subgroup (`guestpara_op_i` in the
/// paper's notation).
#[must_use]
pub fn pseudo_op(sg: Subgroup) -> usize {
    all_subgroups()
        .iter()
        .position(|s| *s == sg)
        .unwrap_or(usize::MAX)
}

/// Every subgroup, in a stable order.
#[must_use]
pub fn all_subgroups() -> Vec<Subgroup> {
    let mut out: Vec<Subgroup> = Vec::new();
    for op in GOp::ALL {
        let sg = subgroup_of(op);
        if !out.contains(&sg) {
            out.push(sg);
        }
    }
    out
}

/// All guest opcodes belonging to a subgroup.
#[must_use]
pub fn members(sg: Subgroup) -> Vec<GOp> {
    GOp::ALL
        .into_iter()
        .filter(|op| subgroup_of(*op) == sg)
        .collect()
}

/// Whether the subgroup participates in parameterization at all
/// (`Other`-category subgroups — branches, stack, system — do not).
#[must_use]
pub fn is_parameterizable(sg: Subgroup) -> bool {
    sg.category.is_parameterizable()
        // The paper's seven unlearnable instructions fall in subgroups the
        // framework cannot reach: mla/umull/umlal (no single-instruction
        // host counterpart + distinct shape) and clz (misc format).
        && sg.shape_tag != shape_tag(Shape::Mul4)
        && sg.shape_tag != shape_tag(Shape::Unary2)
        // Floating point is classified but not parameterized in this
        // reproduction (SPEC CINT workloads are integer; see DESIGN.md).
        && sg.data_type == DataType::Int
}

/// How a guest opcode reaches host code: its host opcode, plus the
/// operand transform (if the guest opcode is the *complex* member of a
/// pair) that auxiliary host instructions must implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCounterpart {
    /// The core host opcode.
    pub hop: HOp,
    /// Transform applied to the last source operand before the core op.
    pub transform: Option<OperandTransform>,
}

/// The host counterpart of a guest opcode, when a single-core-op
/// correspondence exists. The paper's unlearnables (`mla`, `umull`,
/// `umlal`, `clz`) return `None`.
#[must_use]
pub fn host_counterpart(op: GOp) -> Option<HostCounterpart> {
    use GOp as G;
    let direct = |hop| {
        Some(HostCounterpart {
            hop,
            transform: None,
        })
    };
    let complex = |hop, t| {
        Some(HostCounterpart {
            hop,
            transform: Some(t),
        })
    };
    match op {
        G::Add => direct(HOp::Add),
        G::Adc => direct(HOp::Adc),
        G::Sub => direct(HOp::Sub),
        G::Sbc => direct(HOp::Sbb),
        G::And => direct(HOp::And),
        G::Orr => direct(HOp::Or),
        G::Eor => direct(HOp::Xor),
        G::Mul => direct(HOp::Imul),
        G::Lsl => direct(HOp::Shl),
        G::Lsr => direct(HOp::Shr),
        G::Asr => direct(HOp::Sar),
        G::Ror => direct(HOp::Ror),
        // Complex pairs (paper §IV-C1, Fig 7).
        G::Bic => complex(HOp::And, OperandTransform::InvertLastSource),
        G::Rsb => complex(HOp::Sub, OperandTransform::SwapSources),
        G::Rsc => complex(HOp::Sbb, OperandTransform::SwapSources),
        G::Mvn => complex(HOp::Mov, OperandTransform::InvertLastSource),
        G::Mov => direct(HOp::Mov),
        // Compares.
        G::Cmp => direct(HOp::Cmp),
        G::Cmn => complex(HOp::Cmp, OperandTransform::NegateLastSource),
        G::Tst => direct(HOp::Test),
        G::Teq => complex(HOp::Test, OperandTransform::InvertLastSource), // via xor-like aux
        // Loads and stores.
        G::Ldr => direct(HOp::Mov),
        G::Ldrb => direct(HOp::MovzxB),
        G::Ldrh => direct(HOp::MovzxW),
        G::Str => direct(HOp::Mov),
        G::Strb => direct(HOp::MovB),
        G::Strh => direct(HOp::MovW),
        // No single host counterpart (the paper's unlearnables) or
        // outside the integer parameterization universe.
        G::Mla | G::Umull | G::Umlal | G::Clz => None,
        G::Push | G::Pop | G::B | G::Bl | G::Bx | G::Svc => None,
        G::Vadd => direct(HOp::Addss),
        G::Vsub => direct(HOp::Subss),
        G::Vmul => direct(HOp::Mulss),
        G::Vdiv => direct(HOp::Divss),
        G::Vmov => direct(HOp::Movss),
        G::Vcmp => direct(HOp::Ucomiss),
        G::Vldr | G::Vstr => direct(HOp::Movss),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_subgroups_emerge() {
        // The paper's five integer ARM subsets (§IV-A) appear among ours
        // (we additionally split by shape and keep misc/branch groups
        // non-parameterizable).
        let arith = subgroup_of(GOp::Add);
        assert_eq!(members(arith).len(), 14, "{:?}", members(arith));
        assert!(members(arith).contains(&GOp::Eor));
        assert!(members(arith).contains(&GOp::Bic));
        assert!(!members(arith).contains(&GOp::Mul), "different format");
        assert!(!members(arith).contains(&GOp::Cmp), "different category");

        let movlike = subgroup_of(GOp::Mov);
        assert_eq!(members(movlike), vec![GOp::Mov, GOp::Mvn]);

        let loads = subgroup_of(GOp::Ldr);
        assert_eq!(members(loads), vec![GOp::Ldr, GOp::Ldrb, GOp::Ldrh]);

        let stores = subgroup_of(GOp::Str);
        assert_eq!(members(stores), vec![GOp::Str, GOp::Strb, GOp::Strh]);

        let cmps = subgroup_of(GOp::Cmp);
        assert_eq!(members(cmps), vec![GOp::Cmp, GOp::Cmn, GOp::Tst, GOp::Teq]);
    }

    #[test]
    fn parameterizable_subgroups() {
        assert!(is_parameterizable(subgroup_of(GOp::Add)));
        assert!(is_parameterizable(subgroup_of(GOp::Mov)));
        assert!(is_parameterizable(subgroup_of(GOp::Ldr)));
        assert!(is_parameterizable(subgroup_of(GOp::Str)));
        assert!(is_parameterizable(subgroup_of(GOp::Cmp)));
        assert!(
            is_parameterizable(subgroup_of(GOp::Mul)),
            "mul alone in its shape"
        );
        // The Other category and the unlearnable shapes are not.
        assert!(!is_parameterizable(subgroup_of(GOp::B)));
        assert!(!is_parameterizable(subgroup_of(GOp::Push)));
        assert!(!is_parameterizable(subgroup_of(GOp::Mla)));
        assert!(!is_parameterizable(subgroup_of(GOp::Umull)));
        assert!(!is_parameterizable(subgroup_of(GOp::Clz)));
        assert!(!is_parameterizable(subgroup_of(GOp::Vadd)));
    }

    #[test]
    fn data_types_never_mix() {
        assert_ne!(subgroup_of(GOp::Add), subgroup_of(GOp::Vadd));
        assert_ne!(subgroup_of(GOp::Ldr), subgroup_of(GOp::Vldr));
    }

    #[test]
    fn pseudo_ops_are_dense_and_stable() {
        let all = all_subgroups();
        for (i, sg) in all.iter().enumerate() {
            assert_eq!(pseudo_op(*sg), i);
        }
        // Every opcode maps into some subgroup.
        for op in GOp::ALL {
            assert!(pseudo_op(subgroup_of(op)) < all.len());
        }
    }

    #[test]
    fn counterparts() {
        use pdbt_isa_arm::OperandTransform as T;
        assert_eq!(host_counterpart(GOp::Add).unwrap().hop, HOp::Add);
        assert_eq!(host_counterpart(GOp::Eor).unwrap().hop, HOp::Xor);
        let bic = host_counterpart(GOp::Bic).unwrap();
        assert_eq!(
            (bic.hop, bic.transform),
            (HOp::And, Some(T::InvertLastSource))
        );
        let rsb = host_counterpart(GOp::Rsb).unwrap();
        assert_eq!((rsb.hop, rsb.transform), (HOp::Sub, Some(T::SwapSources)));
        assert!(host_counterpart(GOp::Mla).is_none());
        assert!(host_counterpart(GOp::Clz).is_none());
        assert!(host_counterpart(GOp::B).is_none());
        assert_eq!(host_counterpart(GOp::Ldrb).unwrap().hop, HOp::MovzxB);
    }
}
