//! Condition-flag delegation (paper §IV-B, §IV-D, Fig 10).
//!
//! When a rule-translated guest instruction sets flags that a nearby
//! conditional branch consumes, the translator checks whether the host
//! instruction's own flags can stand in for the guest's — directly or
//! through an inverted condition (the subtraction-carry polarity). If
//! so, the branch uses the live host flags and no memory emulation is
//! needed; otherwise the flags are materialized into the guest
//! environment.

use pdbt_isa::{Cond, Flag, FlagSet};
use pdbt_isa_x86::{CarrySense, Cc};
use pdbt_symexec::FlagEquiv;

/// The flags a guest condition code reads.
#[must_use]
pub fn cond_flag_uses(cond: Cond) -> FlagSet {
    use Flag::*;
    match cond {
        Cond::Eq | Cond::Ne => FlagSet::single(Z),
        Cond::Cs | Cond::Cc => FlagSet::single(C),
        Cond::Mi | Cond::Pl => FlagSet::single(N),
        Cond::Vs | Cond::Vc => FlagSet::single(V),
        Cond::Hi | Cond::Ls => FlagSet::single(C) | FlagSet::single(Z),
        Cond::Ge | Cond::Lt => FlagSet::single(N) | FlagSet::single(V),
        Cond::Gt | Cond::Le => FlagSet::single(N) | FlagSet::single(V) | FlagSet::single(Z),
        Cond::Al => FlagSet::EMPTY,
    }
}

/// Default look-ahead window: "we only check three instructions
/// following a condition flag-setting instruction" (§IV-D).
pub const DELEGATION_WINDOW: usize = 3;

/// Decides whether a guest condition consumed after a rule-translated
/// flag producer can branch directly on the live host flags, and if so
/// on which host condition code.
///
/// `report` is the producer rule's per-flag relationship. Returns `None`
/// when any consumed flag has no usable host counterpart (the branch
/// must then read materialized flags from the environment).
#[must_use]
pub fn delegated_cc(cond: Cond, report: &[(Flag, FlagEquiv)]) -> Option<Cc> {
    let used = cond_flag_uses(cond);
    if used.is_empty() {
        return None;
    }
    let equiv_of = |f: Flag| report.iter().find(|(ff, _)| *ff == f).map(|(_, e)| *e);
    // N, Z, V must match exactly; C may be exact or inverted, which
    // selects the carry sense of the condition mapping.
    let mut sense = CarrySense::AddLike;
    for f in used.iter() {
        match (f, equiv_of(f)) {
            (Flag::C, Some(FlagEquiv::Exact)) => sense = CarrySense::AddLike,
            (Flag::C, Some(FlagEquiv::Inverted)) => sense = CarrySense::SubLike,
            (_, Some(FlagEquiv::Exact)) => {}
            _ => return None,
        }
    }
    Cc::from_guest(cond, sense)
}

/// Whether a rule's flag report allows *materializing* a set of flags
/// into the environment from the live host flags (every flag must be
/// exact or inverted — a mismatched flag cannot be recovered).
#[must_use]
pub fn can_materialize(flags: FlagSet, report: &[(Flag, FlagEquiv)]) -> bool {
    flags.iter().all(|f| {
        report
            .iter()
            .any(|(ff, e)| *ff == f && matches!(e, FlagEquiv::Exact | FlagEquiv::Inverted))
    })
}

/// The host `setcc` condition that reads flag `f` from the live host
/// flags, honouring an inverted relationship.
#[must_use]
pub fn setcc_for_flag(f: Flag, equiv: FlagEquiv) -> Option<Cc> {
    let direct = match f {
        Flag::N => Cc::S,
        Flag::Z => Cc::E,
        Flag::C => Cc::B,
        Flag::V => Cc::O,
    };
    match equiv {
        FlagEquiv::Exact => Some(direct),
        FlagEquiv::Inverted => Some(direct.invert()),
        FlagEquiv::Mismatch => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nzcv() -> Vec<(Flag, FlagEquiv)> {
        Flag::ALL
            .into_iter()
            .map(|f| (f, FlagEquiv::Exact))
            .collect()
    }

    fn cmp_report() -> Vec<(Flag, FlagEquiv)> {
        // cmp ↔ cmpl: C inverted, others exact.
        vec![
            (Flag::N, FlagEquiv::Exact),
            (Flag::Z, FlagEquiv::Exact),
            (Flag::C, FlagEquiv::Inverted),
            (Flag::V, FlagEquiv::Exact),
        ]
    }

    #[test]
    fn cond_flag_uses_cover_all_conditions() {
        assert_eq!(cond_flag_uses(Cond::Eq), FlagSet::single(Flag::Z));
        assert!(cond_flag_uses(Cond::Lt).contains(Flag::N));
        assert!(cond_flag_uses(Cond::Lt).contains(Flag::V));
        assert!(cond_flag_uses(Cond::Hi).contains(Flag::C));
        assert!(cond_flag_uses(Cond::Al).is_empty());
    }

    #[test]
    fn delegation_after_exact_flags() {
        // adds ↔ addl: all flags exact → every condition delegates with
        // add-like carry sense.
        assert_eq!(delegated_cc(Cond::Eq, &exact_nzcv()), Some(Cc::E));
        assert_eq!(delegated_cc(Cond::Lt, &exact_nzcv()), Some(Cc::L));
        assert_eq!(delegated_cc(Cond::Cs, &exact_nzcv()), Some(Cc::B));
    }

    #[test]
    fn delegation_after_compare_inverts_carry_conditions() {
        // Paper Fig 10's scenario: cmp/subs feeding a branch. Guest Cs
        // (no borrow) maps to host AE (CF clear).
        assert_eq!(delegated_cc(Cond::Cs, &cmp_report()), Some(Cc::Ae));
        assert_eq!(delegated_cc(Cond::Cc, &cmp_report()), Some(Cc::B));
        assert_eq!(delegated_cc(Cond::Hi, &cmp_report()), Some(Cc::A));
        assert_eq!(delegated_cc(Cond::Eq, &cmp_report()), Some(Cc::E));
        assert_eq!(delegated_cc(Cond::Ge, &cmp_report()), Some(Cc::Ge));
    }

    #[test]
    fn delegation_fails_on_missing_or_mismatched_flags() {
        // NZ-only report (logical ops): Z-conditions delegate, V-reading
        // conditions do not.
        let nz = vec![(Flag::N, FlagEquiv::Exact), (Flag::Z, FlagEquiv::Exact)];
        assert_eq!(delegated_cc(Cond::Ne, &nz), Some(Cc::Ne));
        assert_eq!(delegated_cc(Cond::Ge, &nz), None);
        assert_eq!(delegated_cc(Cond::Cs, &nz), None);
        let mismatch = vec![(Flag::Z, FlagEquiv::Mismatch)];
        assert_eq!(delegated_cc(Cond::Eq, &mismatch), None);
    }

    #[test]
    fn materialization_requirements() {
        assert!(can_materialize(FlagSet::NZ, &cmp_report()));
        assert!(can_materialize(FlagSet::NZCV, &cmp_report()));
        assert!(!can_materialize(
            FlagSet::NZ,
            &[(Flag::N, FlagEquiv::Exact)]
        ));
        assert!(!can_materialize(
            FlagSet::single(Flag::Z),
            &[(Flag::Z, FlagEquiv::Mismatch)]
        ));
    }

    #[test]
    fn setcc_mapping() {
        assert_eq!(setcc_for_flag(Flag::Z, FlagEquiv::Exact), Some(Cc::E));
        assert_eq!(setcc_for_flag(Flag::C, FlagEquiv::Inverted), Some(Cc::Ae));
        assert_eq!(setcc_for_flag(Flag::N, FlagEquiv::Exact), Some(Cc::S));
        assert_eq!(setcc_for_flag(Flag::V, FlagEquiv::Mismatch), None);
    }
}
