//! Rule parameterization: deriving new rules from learned ones
//! (paper §IV — classification, parameterization, verification,
//! merging).
//!
//! For every subgroup that contributed at least one learned rule, the
//! engine enumerates the subgroup's combo universe along the two
//! parameterization dimensions — *opcode* (other members of the
//! subgroup) and *addressing mode* (operand-kind and dependence-pattern
//! variants, subject to the §IV-B guidelines) — emits an adapted host
//! template for each target combo, verifies it symbolically, and merges
//! the survivors into the rule store.

use crate::classify::{self, Subgroup};
use crate::emit::emit_for;
use crate::key::{ComboKey, ModeTag};
use crate::ruleset::{verify_combo, Provenance, RuleEntry, RuleSet};
use pdbt_isa_arm::{Op as GOp, Shape, ShiftKind};
use pdbt_par::Pool;
use pdbt_symexec::CheckOptions;
use std::collections::{HashMap, HashSet};

/// Parameterization configuration (the ablation knobs of Figs 14/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeriveConfig {
    /// Opcode parameterization (dimension 1).
    pub opcode: bool,
    /// Addressing-mode parameterization (dimension 2).
    pub addrmode: bool,
    /// Condition-flag delegation: when enabled, flag-setting variants
    /// (`s` bit, compares with differing flag formulas) are derivable
    /// because the runtime handles flags separately (§IV-B/D); when
    /// disabled, only flag-silent combos and exact-flag seeds derive.
    pub flag_delegation: bool,
}

impl DeriveConfig {
    /// Full parameterization (the paper's `para.` configuration).
    #[must_use]
    pub fn full() -> DeriveConfig {
        DeriveConfig {
            opcode: true,
            addrmode: true,
            flag_delegation: true,
        }
    }

    /// No parameterization (the `w/o para.` learned-rules baseline).
    #[must_use]
    pub fn none() -> DeriveConfig {
        DeriveConfig {
            opcode: false,
            addrmode: false,
            flag_delegation: false,
        }
    }

    /// Only opcode parameterization (first bar of Fig 14).
    #[must_use]
    pub fn opcode_only() -> DeriveConfig {
        DeriveConfig {
            opcode: true,
            addrmode: false,
            flag_delegation: false,
        }
    }

    /// Opcode + addressing mode (second bar of Fig 14).
    #[must_use]
    pub fn opcode_addrmode() -> DeriveConfig {
        DeriveConfig {
            opcode: true,
            addrmode: true,
            flag_delegation: false,
        }
    }
}

/// Derivation statistics (feeds Table III).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeriveStats {
    /// Learned rules in the input store.
    pub learned: usize,
    /// Distinct rules after opcode parameterization (learned rules that
    /// share a subgroup and operand signature collapse together).
    pub opcode_param_rules: usize,
    /// Distinct rules after addressing-mode parameterization (signatures
    /// collapse across modes and dependence patterns).
    pub addrmode_param_rules: usize,
    /// Derived entries added by the engine.
    pub derived: usize,
    /// Derivation attempts rejected by verification.
    pub rejected: usize,
    /// Candidates quarantined because their worker panicked or an
    /// injected fault (`emit`/`pool` sites) failed them — a subset of
    /// `rejected` (each quarantined candidate also counts its
    /// occurrences there), counted per candidate. Zero in a healthy,
    /// fault-free run.
    pub quarantined: usize,
    /// Candidates whose verification ran out of fuel
    /// ([`CheckOptions::fuel`]) — also a subset of `rejected`, counted
    /// per candidate. Zero under the default budget.
    pub fuel_exhausted: usize,
    /// Total applicable (instantiable) rules in the output store.
    pub instantiated: usize,
}

/// Restricted-growth strings: all canonical dependence patterns over
/// `n` register positions (position 0 is always slot 0).
fn patterns(n: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut cur = vec![0u8; n];
    fn rec(cur: &mut Vec<u8>, i: usize, max: u8, out: &mut Vec<Vec<u8>>) {
        if i == cur.len() {
            out.push(cur.clone());
            return;
        }
        for v in 0..=max + 1 {
            cur[i] = v;
            rec(cur, i + 1, max.max(v), out);
        }
    }
    if n == 0 {
        return vec![Vec::new()];
    }
    rec(&mut cur, 1, 0, &mut out);
    out
}

/// The flexible-operand mode variants for the addressing-mode dimension.
fn flex_modes() -> Vec<ModeTag> {
    vec![
        ModeTag::Reg,
        ModeTag::Imm,
        ModeTag::Shifted(ShiftKind::Lsl),
        ModeTag::Shifted(ShiftKind::Lsr),
        ModeTag::Shifted(ShiftKind::Asr),
        ModeTag::Shifted(ShiftKind::Ror),
    ]
}

/// Register-mention count of a mode vector (the dst/base positions are
/// `Reg`; the flex position contributes 0 or 1).
fn reg_mentions(modes: &[ModeTag]) -> usize {
    modes
        .iter()
        .map(|m| match m {
            ModeTag::Reg | ModeTag::Shifted(_) => 1,
            ModeTag::MemBaseImm => 1,
            ModeTag::MemBaseReg => 2,
            ModeTag::Imm | ModeTag::Opaque => 0,
        })
        .sum()
}

/// Enumerates the combo universe of one opcode under the guidelines of
/// §IV-B: the target operand is never an immediate, non-load/store
/// operands never generalize to memory, load sources / store targets
/// stay memory.
fn combo_universe(op: GOp, s: bool) -> Vec<ComboKey> {
    let mode_sets: Vec<Vec<ModeTag>> = match op.shape() {
        Shape::Dp3 => flex_modes()
            .into_iter()
            .map(|m| vec![ModeTag::Reg, ModeTag::Reg, m])
            .collect(),
        Shape::Dp2 => flex_modes()
            .into_iter()
            .map(|m| vec![ModeTag::Reg, m])
            .collect(),
        Shape::Cmp2 => flex_modes()
            .into_iter()
            .map(|m| vec![ModeTag::Reg, m])
            .collect(),
        Shape::LdSt => vec![
            vec![ModeTag::Reg, ModeTag::MemBaseImm],
            vec![ModeTag::Reg, ModeTag::MemBaseReg],
        ],
        Shape::Mul3 => vec![vec![ModeTag::Reg, ModeTag::Reg, ModeTag::Reg]],
        _ => return Vec::new(),
    };
    let mut out = Vec::new();
    for modes in mode_sets {
        for pattern in patterns(reg_mentions(&modes)) {
            out.push(ComboKey {
                op,
                s,
                modes: modes.clone(),
                reg_pattern: pattern,
            });
        }
    }
    out
}

/// The operand signature of a key (everything except the opcode), used
/// to group learned rules into opcode-parameterized rules.
fn opcode_signature(key: &ComboKey) -> (usize, bool, Vec<ModeTag>, Vec<u8>) {
    (
        classify::pseudo_op(classify::subgroup_of(key.op)),
        key.s,
        key.modes.clone(),
        key.reg_pattern.clone(),
    )
}

/// The shape signature of a key (subgroup + operand count only), used to
/// group opcode-parameterized rules into addressing-mode-parameterized
/// rules.
fn addrmode_signature(key: &ComboKey) -> (usize, bool, usize) {
    (
        classify::pseudo_op(classify::subgroup_of(key.op)),
        key.s,
        key.modes.len(),
    )
}

/// One deduplicated derivation candidate. `occurrences` counts how many
/// times the enumeration visits the key — a candidate that fails
/// verification is rejected once per visit, exactly as the serial loop
/// (which never caches failures) would count it.
struct Candidate {
    key: ComboKey,
    provenance: Provenance,
    occurrences: usize,
}

/// A verification worker's decision for one candidate.
enum Outcome {
    Accepted(Box<RuleEntry>),
    Rejected,
    /// Rejected because the checker ran out of fuel — tracked apart so
    /// a starved run is distinguishable from genuine non-equivalence.
    RejectedFuel,
    /// Failed by an injected `emit`-site fault; merged like a panicking
    /// worker (which surfaces as `None` from the catching map).
    Quarantined,
}

/// Runs parameterization over a learned rule set, returning the expanded
/// store and the statistics. Serial shorthand for
/// [`derive_jobs`]`(learned, cfg, check, 1)`.
#[must_use]
pub fn derive(learned: &RuleSet, cfg: DeriveConfig, check: CheckOptions) -> (RuleSet, DeriveStats) {
    derive_jobs(learned, cfg, check, 1)
}

/// Runs parameterization with verification fanned out over `jobs` worker
/// threads.
///
/// The pipeline has three phases: a serial, deterministically ordered
/// enumeration of the candidate universe (subgroups, seeds, and
/// duplicates all sorted or folded in a fixed order); a parallel
/// emit-and-verify map over the deduplicated candidates ([`verify_combo`]
/// is pure, so verdicts are position-stable); and a serial merge in
/// enumeration order. The resulting `RuleSet` and `DeriveStats` are
/// therefore **identical for every `jobs` value** — `jobs` buys
/// wall-clock time only. `tests/determinism.rs` pins this down.
///
/// Verification workers are panic-isolated ([`Pool::map_catch_util`]):
/// a candidate whose worker panics — organically or via the `pool`
/// fault site — is quarantined as a counted rejection
/// ([`DeriveStats::quarantined`]) instead of aborting the whole
/// derivation. Injected faults are keyed on the candidate's combo key,
/// so the serial-vs-parallel identity holds under fault injection too.
#[must_use]
pub fn derive_jobs(
    learned: &RuleSet,
    cfg: DeriveConfig,
    check: CheckOptions,
    jobs: usize,
) -> (RuleSet, DeriveStats) {
    let _span = pdbt_obs::span("parameterize");
    let mut stats = DeriveStats {
        learned: learned.len(),
        ..DeriveStats::default()
    };
    // Rule-count aggregations for Table III.
    let mut opcode_sigs = HashSet::new();
    let mut addr_sigs = HashSet::new();
    for (key, _) in learned.iter() {
        opcode_sigs.insert(opcode_signature(key));
        addr_sigs.insert(addrmode_signature(key));
    }
    stats.opcode_param_rules = opcode_sigs.len();
    stats.addrmode_param_rules = addr_sigs.len();

    let mut out = learned.clone();
    if !cfg.opcode && !cfg.addrmode {
        stats.instantiated = out.len();
        return (out, stats);
    }

    // Phase 1 — enumerate. Seeds: which subgroups have learned rules,
    // and which operand signatures appear per subgroup (for the
    // opcode-only stage). Everything is sorted so the candidate order
    // does not depend on `HashMap` iteration order.
    let mut subgroup_seeds: HashMap<Subgroup, Vec<ComboKey>> = HashMap::new();
    for (key, _) in learned.iter() {
        subgroup_seeds
            .entry(classify::subgroup_of(key.op))
            .or_default()
            .push(key.clone());
    }
    let mut groups: Vec<(Subgroup, Vec<ComboKey>)> = subgroup_seeds.into_iter().collect();
    groups.sort_by_key(|(sg, _)| *sg);

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut index: HashMap<ComboKey, usize> = HashMap::new();
    for (sg, seeds) in &mut groups {
        if !classify::is_parameterizable(*sg) {
            continue;
        }
        seeds.sort();
        for op in classify::members(*sg) {
            // Flag-setting variants are always enumerated; without
            // delegation, the post-verification filter below keeps only
            // the ones whose host flags are *exactly* the guest's (the
            // baseline's flag-inclusive rules), while delegation also
            // admits inverted-carry relationships (§IV-D).
            let s_variants: Vec<bool> = if op.supports_s() {
                vec![false, true]
            } else {
                vec![false]
            };
            for s in s_variants {
                let universe = if cfg.addrmode {
                    combo_universe(op, s)
                } else {
                    // Opcode dimension only: project the learned operand
                    // signatures of this subgroup onto the new opcode.
                    seeds
                        .iter()
                        .filter(|k| k.s == s || cfg.flag_delegation)
                        .map(|k| ComboKey {
                            op,
                            s,
                            modes: k.modes.clone(),
                            reg_pattern: k.reg_pattern.clone(),
                        })
                        .collect()
                };
                for key in universe {
                    if out.contains(&key) {
                        continue;
                    }
                    use std::collections::hash_map::Entry;
                    match index.entry(key) {
                        Entry::Occupied(e) => candidates[*e.get()].occurrences += 1,
                        Entry::Vacant(v) => {
                            let key = v.key().clone();
                            // A key names its opcode, so duplicates can
                            // only repeat within one subgroup: the
                            // provenance decision is safe to make on the
                            // first visit.
                            let provenance = if seeds.iter().any(|k| {
                                k.modes == key.modes
                                    && k.reg_pattern == key.reg_pattern
                                    && k.s == key.s
                            }) {
                                Provenance::OpcodeDerived
                            } else {
                                Provenance::AddrModeDerived
                            };
                            v.insert(candidates.len());
                            candidates.push(Candidate {
                                key,
                                provenance,
                                occurrences: 1,
                            });
                        }
                    }
                }
            }
        }
    }

    // Phase 2 — emit and verify every candidate over the pool, with
    // panic isolation so one poisoned candidate degrades to a
    // quarantine instead of killing the run.
    let pool = Pool::new(jobs);
    let (outcomes, util) = pool.map_catch_util(&candidates, |c| {
        if pdbt_faults::hit_with(pdbt_faults::Site::Pool, || {
            pdbt_faults::key_of(format!("{}", c.key).as_bytes())
        }) {
            panic!("injected fault: pool worker");
        }
        if pdbt_faults::hit_with(pdbt_faults::Site::Emit, || {
            pdbt_faults::key_of(format!("{}", c.key).as_bytes())
        }) {
            return Outcome::Quarantined;
        }
        let Some(template) = emit_for(&c.key) else {
            return Outcome::Rejected;
        };
        match verify_combo(&c.key, &template, check) {
            Ok(flags) => {
                // Without delegation a derived rule may not introduce
                // flag effects that differ from exact host behaviour.
                if !cfg.flag_delegation
                    && flags
                        .iter()
                        .any(|(_, e)| *e != pdbt_symexec::FlagEquiv::Exact)
                {
                    return Outcome::Rejected;
                }
                Outcome::Accepted(Box::new(RuleEntry {
                    template,
                    flags,
                    provenance: c.provenance,
                    imm_constraint: None,
                }))
            }
            Err(reason) if reason.starts_with(pdbt_symexec::FUEL_EXHAUSTED) => {
                Outcome::RejectedFuel
            }
            Err(_) => Outcome::Rejected,
        }
    });
    drop(pdbt_obs::span_with("derive_pool", || {
        format!(
            "jobs={} candidates={} tasks_per_worker={util:?}",
            pool.jobs(),
            candidates.len()
        )
    }));

    // Phase 3 — merge in enumeration order. A `None` outcome is a
    // panicked (quarantined) worker; quarantines and fuel exhaustions
    // fold into `rejected` (so totals are stable) and are additionally
    // counted in their own fields.
    for (c, outcome) in candidates.iter().zip(outcomes) {
        match outcome {
            Some(Outcome::Accepted(entry)) => {
                if out.insert(c.key.clone(), *entry) {
                    stats.derived += 1;
                }
            }
            Some(Outcome::Rejected) => stats.rejected += c.occurrences,
            Some(Outcome::RejectedFuel) => {
                stats.rejected += c.occurrences;
                stats.fuel_exhausted += 1;
            }
            Some(Outcome::Quarantined) | None => {
                stats.rejected += c.occurrences;
                stats.quarantined += 1;
            }
        }
    }
    stats.instantiated = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::parameterize;
    use crate::ruleset::RuleSet;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{Operand as O, Reg};

    fn learned_add_rule() -> RuleSet {
        // One learned rule: add r0, r0, r1 (reg mode, RMW pattern).
        let p = parameterize(&g::add(Reg::R4, Reg::R4, O::Reg(Reg::R5))).unwrap();
        let template = emit_for(&p.key).unwrap();
        let flags = verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
        let mut rs = RuleSet::new();
        rs.insert(
            p.key,
            RuleEntry {
                template,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None,
            },
        );
        rs
    }

    #[test]
    fn patterns_are_restricted_growth_strings() {
        assert_eq!(patterns(1), vec![vec![0]]);
        assert_eq!(patterns(2), vec![vec![0, 0], vec![0, 1]]);
        assert_eq!(patterns(3).len(), 5); // Bell(3)
        assert!(patterns(3).contains(&vec![0, 1, 2]));
        assert!(patterns(3).contains(&vec![0, 0, 1]));
        assert!(patterns(3).contains(&vec![0, 1, 0]));
    }

    #[test]
    fn opcode_dimension_reaches_unseen_opcodes() {
        // Paper Fig 3: an add rule derives the eor rule that was never
        // in the training set.
        let learned = learned_add_rule();
        let (full, stats) = derive(
            &learned,
            DeriveConfig::opcode_only(),
            CheckOptions::default(),
        );
        assert!(stats.derived > 0, "{stats:?}");
        let eor = g::eor(Reg::R9, Reg::R9, O::Reg(Reg::R10));
        assert!(full.lookup(&eor).is_some(), "eor derived from add");
        let sub = g::sub(Reg::R9, Reg::R9, O::Reg(Reg::R10));
        assert!(full.lookup(&sub).is_some(), "sub derived from add");
        // But not a different addressing mode (that is dimension 2).
        let imm = g::add(Reg::R9, Reg::R9, O::Imm(4));
        assert!(
            full.lookup(&imm).is_none(),
            "imm mode needs addr-mode parameterization"
        );
    }

    #[test]
    fn addrmode_dimension_reaches_unseen_modes() {
        // Paper Fig 4: immediate mode generalizes to register mode —
        // and here the reverse plus shifted modes and fresh dependence
        // patterns.
        let learned = learned_add_rule();
        let (full, stats) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        assert!(stats.derived > stats.learned, "{stats:?}");
        assert!(full.lookup(&g::add(Reg::R9, Reg::R9, O::Imm(4))).is_some());
        assert!(full
            .lookup(&g::add(Reg::R4, Reg::R5, O::Reg(Reg::R6)))
            .is_some());
        assert!(full
            .lookup(&g::eor(
                Reg::R4,
                Reg::R5,
                O::Shifted {
                    rm: Reg::R6,
                    kind: ShiftKind::Lsl,
                    amount: 2
                }
            ))
            .is_some());
        // The dst-aliases-src2 dependence pattern (Fig 8) verifies with
        // its auxiliary move.
        assert!(full
            .lookup(&g::sub(Reg::R5, Reg::R4, O::Reg(Reg::R5)))
            .is_some());
    }

    #[test]
    fn flag_delegation_unlocks_s_variants() {
        let learned = learned_add_rule();
        let (without, _) = derive(
            &learned,
            DeriveConfig::opcode_addrmode(),
            CheckOptions::default(),
        );
        let (with, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        // adds has exact flags → derivable in both configurations.
        let adds = g::add(Reg::R4, Reg::R4, O::Imm(1)).with_s();
        assert!(without.lookup(&adds).is_some());
        assert!(with.lookup(&adds).is_some());
        // subs (inverted carry) needs delegation.
        let subs = g::sub(Reg::R4, Reg::R4, O::Imm(1)).with_s();
        assert!(
            without.lookup(&subs).is_none(),
            "no inverted-carry rules without delegation"
        );
        assert!(with.lookup(&subs).is_some(), "delegation unlocks them");
    }

    #[test]
    fn flag_delegation_gates_inverted_carry_rules() {
        // Exact-flag compares (cmn/tst/teq from a cmp seed) derive in
        // every configuration; derived cmp mode-variants carry an
        // inverted carry and need delegation.
        let mut rs = RuleSet::new();
        let p = parameterize(&g::cmp(Reg::R4, O::Reg(Reg::R5))).unwrap();
        let template = emit_for(&p.key).unwrap();
        let flags = verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
        rs.insert(
            p.key,
            RuleEntry {
                template,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None,
            },
        );
        let (without, _) = derive(
            &rs,
            DeriveConfig::opcode_addrmode(),
            CheckOptions::default(),
        );
        let (with, _) = derive(&rs, DeriveConfig::full(), CheckOptions::default());
        // Exact compares derive in both.
        assert!(without.lookup(&g::cmn(Reg::R4, O::Reg(Reg::R5))).is_some());
        assert!(without.lookup(&g::tst(Reg::R4, O::Imm(1))).is_some());
        // cmp's immediate mode variant has inverted C → delegation only.
        assert!(without.lookup(&g::cmp(Reg::R4, O::Imm(3))).is_none());
        assert!(with.lookup(&g::cmp(Reg::R4, O::Imm(3))).is_some());
    }

    #[test]
    fn parallel_derivation_matches_serial() {
        let learned = learned_add_rule();
        let opts = CheckOptions::default();
        let (serial, s_stats) = derive_jobs(&learned, DeriveConfig::full(), opts, 1);
        let (par, p_stats) = derive_jobs(&learned, DeriveConfig::full(), opts, 8);
        assert_eq!(s_stats, p_stats, "stats must not depend on jobs");
        assert_eq!(serial.len(), par.len());
        for (k, e) in serial.iter() {
            assert_eq!(par.get(k), Some(e), "entry for {k} differs");
        }
    }

    #[test]
    fn derivation_requires_seeds() {
        // No learned load rule → no derived load rules (training-set
        // dependence, the premise of Figs 2/16).
        let learned = learned_add_rule();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let ldr = g::ldr(
            Reg::R4,
            pdbt_isa_arm::MemAddr::BaseImm {
                base: Reg::R5,
                offset: 4,
            },
        );
        assert!(full.lookup(&ldr).is_none(), "no seed in the load subgroup");
    }

    #[test]
    fn derived_rules_instantiate_and_run() {
        use crate::template::HostLoc;
        use pdbt_isa_x86::Reg as HReg;
        let learned = learned_add_rule();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        // Translate `eor r9, r10, r11` and execute the host code.
        let inst = g::eor(Reg::R9, Reg::R10, O::Reg(Reg::R11));
        let m = full.lookup(&inst).unwrap();
        let code = full
            .instantiate_match(
                &m,
                &[
                    HostLoc::Reg(HReg::Ecx),
                    HostLoc::Reg(HReg::Ebx),
                    HostLoc::Reg(HReg::Esi),
                ],
            )
            .unwrap();
        let mut h = pdbt_isa_x86::Cpu::new();
        h.write(HReg::Ebx, 0b1100);
        h.write(HReg::Esi, 0b1010);
        pdbt_isa_x86::exec_block(&mut h, &code, 100).unwrap();
        assert_eq!(h.read(HReg::Ecx), 0b0110);
    }

    #[test]
    fn table3_shape_counts_decrease_then_expand() {
        // learned ≥ opcode-param ≥ addr-param classes; instantiated ≫
        // learned (Table III's compression-then-expansion shape).
        let mut rs = learned_add_rule();
        for inst in [
            g::add(Reg::R4, Reg::R4, O::Imm(3)),
            g::sub(Reg::R4, Reg::R4, O::Reg(Reg::R5)),
            g::orr(Reg::R4, Reg::R5, O::Reg(Reg::R6)),
            g::mov(Reg::R4, O::Imm(9)),
        ] {
            let p = parameterize(&inst).unwrap();
            let template = emit_for(&p.key).unwrap();
            let flags = verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
            rs.insert(
                p.key,
                RuleEntry {
                    template,
                    flags,
                    provenance: Provenance::Learned,
                    imm_constraint: None,
                },
            );
        }
        let (_, stats) = derive(&rs, DeriveConfig::full(), CheckOptions::default());
        assert_eq!(stats.learned, 5);
        assert!(stats.opcode_param_rules <= stats.learned);
        assert!(stats.addrmode_param_rules <= stats.opcode_param_rules);
        assert!(
            stats.instantiated > stats.learned * 10,
            "expansion: {} from {}",
            stats.instantiated,
            stats.learned
        );
    }
}
