//! The paper's contribution: learning translation rules from compiled
//! binaries and **parameterizing** them along the opcode and
//! addressing-mode dimensions to cover instructions never seen in
//! training.
//!
//! Pipeline (paper Figs 1 & 5):
//!
//! 1. [`learning`] — pair guest/host sequences per source statement
//!    (via the synthetic compiler's debug map), verify semantic
//!    equivalence symbolically, normalize and merge into a [`RuleSet`].
//! 2. [`classify`] — split the ISA into subgroups by data type,
//!    encoding format and operation category (§IV-A).
//! 3. [`mod@derive`] — enumerate each seeded subgroup's combo universe,
//!    adapt host templates (opcode substitution, addressing-mode
//!    substitution, auxiliary instructions for complex opcodes and
//!    dependence patterns), verify every derivation, merge (§IV-B/C/D).
//! 4. [`flags`] — condition-flag delegation for rule application.
//!
//! # Example: Fig 3 in code
//!
//! ```
//! use pdbt_core::{key, emit, ruleset, derive};
//! use pdbt_core::ruleset::{Provenance, RuleEntry, RuleSet};
//! use pdbt_isa_arm::{builders as g, Operand as O, Reg};
//! use pdbt_symexec::CheckOptions;
//!
//! // One learned rule for `add`…
//! let p = key::parameterize(&g::add(Reg::R4, Reg::R4, O::Reg(Reg::R5))).unwrap();
//! let template = emit::emit_for(&p.key).unwrap();
//! let flags = ruleset::verify_combo(&p.key, &template, CheckOptions::default()).unwrap();
//! let mut rules = RuleSet::new();
//! rules.insert(p.key, RuleEntry {
//!     template, flags, provenance: Provenance::Learned, imm_constraint: None,
//! });
//!
//! // …derives the `eor` rule that was never in the training set.
//! let (full, stats) = derive::derive(
//!     &rules, derive::DeriveConfig::full(), CheckOptions::default());
//! assert!(full.lookup(&g::eor(Reg::R9, Reg::R9, O::Reg(Reg::R10))).is_some());
//! assert!(stats.instantiated > 100);
//! ```

pub mod classify;
pub mod derive;
pub mod emit;
pub mod flags;
pub mod key;
pub mod learning;
pub mod ruleset;
pub mod store_io;
pub mod template;

pub use derive::{derive as parameterize_rules, derive_jobs, DeriveConfig, DeriveStats};
pub use key::{parameterize, ComboKey, Instantiation, ModeTag, Parameterized};
pub use learning::{learn_all, learn_into, FunnelStats, LearnConfig, Reject};
pub use ruleset::{Match, Provenance, RuleEntry, RuleSet};
pub use store_io::{load_rules, load_rules_salvage, save_rules, QuarantinedRule, StoreError};
pub use template::{HostLoc, Template, TemplateError, TemplateInst};
