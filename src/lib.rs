//! # pdbt — Parameterized learning-based dynamic binary translation
//!
//! A self-contained reproduction of *"More with Less — Deriving More
//! Translation Rules with Less Training Data for DBTs Using
//! Parameterization"* (Jiang et al., MICRO 2020).
//!
//! This facade crate re-exports the whole workspace. Most users want:
//!
//! * [`core`] — learning translation rules and parameterizing them
//!   (the paper's contribution),
//! * [`runtime`] — the DBT engine that applies them,
//! * [`workloads`] — the synthetic SPEC-CINT-like benchmark suite.
//!
//! ## Quickstart
//!
//! ```
//! use pdbt::core::derive::{derive, DeriveConfig};
//! use pdbt::core::learning::LearnConfig;
//! use pdbt::workloads::{run_dbt, train_excluding, Benchmark, Scale};
//! use pdbt_symexec::CheckOptions;
//!
//! // Learn rules from every benchmark except `mcf`, parameterize them,
//! // and run `mcf` under the parameterized DBT.
//! let suite = pdbt::workloads::suite(Scale::tiny());
//! let learned = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
//! let (rules, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
//! let target = suite.iter().find(|w| w.bench == Benchmark::Mcf).unwrap();
//! let report = run_dbt(target, Some(rules), true).unwrap();
//! assert!(report.metrics.coverage() > 0.5);
//! ```

pub use pdbt_artifact as artifact;
pub use pdbt_compiler as compiler;
pub use pdbt_core as core;
pub use pdbt_fleet as fleet;
pub use pdbt_ir as ir;
pub use pdbt_isa as isa;
pub use pdbt_isa_arm as arm;
pub use pdbt_isa_x86 as x86;
pub use pdbt_obs as obs;
pub use pdbt_runtime as runtime;
pub use pdbt_symexec as symexec;
pub use pdbt_workloads as workloads;
