//! `pdbt` — command-line front end for the parameterized learning-based
//! DBT.
//!
//! ```text
//! pdbt train  [--scale tiny|full] [--exclude BENCH] [--no-param] [--jobs N]
//!             [--faults SPEC] -o rules.txt
//! pdbt run    prog.s [--rules rules.txt] [--no-delegation] [--stats] [--jobs N]
//!             [--no-chain] [--no-trace] [--trace-threshold N] [--backend model|threaded]
//!             [--faults SPEC] [--report-json FILE] [--trace-out FILE]
//! pdbt stats  prog.s [--rules rules.txt] [--no-delegation] [--jobs N]
//!             [--no-chain] [--no-trace] [--trace-threshold N] [--backend model|threaded]
//!             [--faults SPEC] [--report-json FILE] [--trace-out FILE]
//! pdbt trace  prog.s [--rules rules.txt] [--addr HEX]
//! pdbt bench  [--scale tiny|full] [BENCH]
//! pdbt serve  [--addr HOST:PORT] [--rules rules.txt] [--jobs N] [--deadline-ms N]
//!             [--peer ADDR]... [--replicate-interval SECS]
//! pdbt sync   PEER [--timeout-s N] -o DIR
//! pdbt submit [prog.s] [--addr HOST:PORT] [--workload BENCH --scale tiny|full]
//!             [--max-guest N] [--deadline-ms N] [--faults SPEC] [--no-delegation]
//!             [--timeout-s N] [--report-json FILE] [--ping] [--shutdown]
//! ```
//!
//! `serve` starts the multi-session translation daemon: every submitted
//! run borrows one shared ruleset and warm code cache (see
//! `pdbt_serve`), so repeated guests skip re-translation while each
//! request still gets its own isolated metrics/report. `--peer ADDR`
//! (repeatable) joins the replication plane: the daemon pulls missing
//! or newer sealed artifacts from each peer at boot and, with
//! `--replicate-interval SECS`, on a jittered refresh tick; on drain
//! it writes grown partitions back to `--artifact-dir` as the next
//! generation. `sync` mirrors a running daemon's sealed artifacts
//! into a directory usable as another daemon's `--artifact-dir`. `submit` sends
//! one request — either a program file or a named synthetic `--workload`
//! — prints the guest output, and exits non-zero unless the outcome is
//! `completed`; `--ping` probes server status and `--shutdown` drains
//! and stops the daemon.
//!
//! `--no-chain` disables the dispatch fast path (direct-mapped jump
//! cache + block chaining), `--no-trace` disables hot-trace superblock
//! promotion, and `--trace-threshold N` sets how many executions make a
//! block hot (default 50). Architectural output and `guest_retired` are
//! identical either way; only dispatch overhead changes.
//!
//! `--jobs N` fans derived-rule verification (`train`) or block
//! pre-translation (`run`/`stats`) across `N` worker threads; results
//! are identical to `--jobs 1` (see `tests/determinism.rs`). `--jobs 0`
//! uses the hardware parallelism.
//!
//! `--backend model|threaded` picks the host block executor (default
//! `threaded`, overridable via the `PDBT_BACKEND` env var): `threaded`
//! compiles each block once into direct-threaded code; `model` is the
//! original re-interpreting oracle. Stripped reports are bit-identical
//! between the two (see `tests/backend.rs`).
//!
//! `run --stats` prints the metrics table to stderr; `stats` prints the
//! full observability report (metrics, per-rule attribution, timing
//! histograms) to stdout. `--report-json` writes the machine-readable
//! run report and `--trace-out` writes a Chrome `trace_event` file
//! loadable in `chrome://tracing` / Perfetto.
//!
//! `--faults SPEC` (or the `PDBT_FAULTS` env var) installs a
//! deterministic fault-injection plan, e.g.
//! `seed=7,rate=0.01,sites=symexec,emit,store,pool,cache`; it needs a
//! binary built with `--features faults` (a plain build warns and runs
//! fault-free). Rule files load in salvage mode: malformed entries are
//! quarantined with a warning and the rest are used, with the count
//! reported in the `resilience` section of `pdbt stats` and the JSON
//! report.
//!
//! Guest programs are assembly listings in the syntax the disassembler
//! prints (see `pdbt_isa_arm::parse_listing`); they are loaded at
//! `0x1000` with a data region at `0x100000` and a stack at `0x80000`.

use pdbt::arm::{parse_listing, Program};
use pdbt::core::derive::{derive, derive_jobs, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::core::{load_rules_salvage, save_rules, RuleSet};
use pdbt::obs::json::Json;
use pdbt::obs::trace::export_chrome_trace;
use pdbt::runtime::{
    translate_block, BackendKind, CodeClass, Engine, EngineConfig, RunSetup, TranslateConfig,
};
use pdbt::runtime::{Outcome, Report, Resilience};
use pdbt::workloads::{run_dbt, run_reference, train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;
use std::process::ExitCode;

const DATA_BASE: u32 = 0x10_0000;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         pdbt train  [--scale tiny|full] [--exclude BENCH] [--no-param] [--jobs N] [--faults SPEC] -o FILE\n  \
         pdbt run    PROG.s [--rules FILE] [--no-delegation] [--stats] [--jobs N] [--no-chain] [--no-trace] [--trace-threshold N] [--backend model|threaded] [--faults SPEC] [--report-json FILE] [--trace-out FILE]\n  \
         pdbt stats  PROG.s [--rules FILE] [--no-delegation] [--jobs N] [--no-chain] [--no-trace] [--trace-threshold N] [--backend model|threaded] [--faults SPEC] [--report-json FILE] [--trace-out FILE]\n  \
         pdbt trace  PROG.s [--rules FILE] [--addr HEX]\n  \
         pdbt bench  [--scale tiny|full] [BENCH]\n  \
         pdbt compile WORKLOAD|PROG.s [--scale tiny|full] [--rules FILE | --baseline] [--no-param] [--jobs N] [--backend model|threaded] [--label NAME] -o FILE.pdba\n  \
         pdbt serve  [--addr HOST:PORT] [--rules FILE] [--jobs N] [--backend model|threaded] [--deadline-ms N] [--flight-out FILE] [--artifact-dir DIR] [--peer ADDR]... [--replicate-interval SECS]\n  \
         pdbt sync   PEER [--timeout-s N] -o DIR\n  \
         pdbt submit [PROG.s] [--addr HOST:PORT] [--workload BENCH --scale tiny|full] [--max-guest N] [--deadline-ms N] [--faults SPEC] [--no-delegation] [--timeout-s N] [--report-json FILE] [--ping] [--shutdown] [--stats]\n  \
         pdbt loadgen [--addr HOST:PORT] [--sessions N] [--requests N] [--hot N] [--tail N] [--seed N] [--poll-ms N] [--timeout-s N] [--out FILE]"
    );
    ExitCode::from(2)
}

/// Minimal flag parser: returns (positional args, flag values).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String], value_flags: &[&str]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if value_flags.contains(&name) {
                    flags.push((name.to_string(), it.next().cloned()));
                } else {
                    flags.push((name.to_string(), None));
                }
            } else if a == "-o" {
                flags.push(("out".to_string(), it.next().cloned()));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Every value of a repeatable flag, in order (e.g. `--peer A --peer B`).
    fn values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }
}

fn scale_of(args: &Args) -> Scale {
    match args.value("scale") {
        Some("tiny") => Scale::tiny(),
        _ => Scale::full(),
    }
}

fn bench_of(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == name)
}

/// The `--jobs N` worker count: absent = 1 (serial), `0` = hardware
/// parallelism.
fn jobs_of(args: &Args) -> Result<usize, String> {
    match args.value("jobs") {
        None => Ok(1),
        Some("0") => Ok(pdbt_par::Pool::auto().jobs()),
        Some(n) => n.parse::<usize>().map_err(|e| format!("bad --jobs: {e}")),
    }
}

/// The `--backend model|threaded` host executor; `None` keeps the
/// engine default (threaded, or the `PDBT_BACKEND` env override).
fn backend_of(args: &Args) -> Result<Option<BackendKind>, String> {
    match args.value("backend") {
        None => Ok(None),
        Some(s) => BackendKind::parse(s)
            .map(Some)
            .ok_or_else(|| format!("bad --backend: {s} (expected model or threaded)")),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let insts = parse_listing(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(Program::new(0x1000, insts))
}

/// Installs the fault-injection plan from `--faults SPEC` or the
/// `PDBT_FAULTS` env var (flag wins). A plan on a binary built without
/// the `faults` feature warns and stays inert.
fn configure_faults(args: &Args) -> Result<(), String> {
    let active = match args.value("faults") {
        Some(spec) => {
            let plan = pdbt_faults::Plan::parse(spec).map_err(|e| format!("bad --faults: {e}"))?;
            pdbt_faults::configure(Some(plan));
            true
        }
        None => pdbt_faults::configure_from_env().map_err(|e| format!("bad PDBT_FAULTS: {e}"))?,
    };
    if active && !pdbt_faults::ENABLED {
        eprintln!(
            "warning: fault plan given, but this binary was built without the `faults` \
             feature; no faults will be injected"
        );
    }
    Ok(())
}

/// Loads a rule store in salvage mode: malformed (or fault-corrupted)
/// entries are quarantined with a warning instead of failing the load.
/// Returns the surviving rules plus the quarantine count.
fn load_rules_file(path: &str) -> Result<(RuleSet, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (rules, quarantined) = load_rules_salvage(&text);
    for q in &quarantined {
        eprintln!(
            "warning: {path}:{}: quarantined rule entry: {}",
            q.line, q.reason
        );
    }
    if !quarantined.is_empty() {
        eprintln!(
            "warning: {path}: salvage mode kept {} rules (+{} sequences), quarantined {} entries",
            rules.len(),
            rules.seq_len(),
            quarantined.len()
        );
    }
    Ok((rules, quarantined.len() as u64))
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.value("out").ok_or("train needs -o FILE")?;
    configure_faults(args)?;
    let scale = scale_of(args);
    let exclude = match args.value("exclude") {
        Some(name) => Some(bench_of(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?),
        None => None,
    };
    eprintln!("building the synthetic suite…");
    let suite = pdbt::workloads::suite(scale);
    let learned = match exclude {
        Some(b) => train_excluding(&suite, b, LearnConfig::default()),
        None => {
            let mut all = RuleSet::new();
            for w in &suite {
                let mut r = RuleSet::new();
                pdbt::core::learning::learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
                all.merge(r);
            }
            all
        }
    };
    eprintln!(
        "learned {} rules (+{} sequences)",
        learned.len(),
        learned.seq_len()
    );
    let rules = if args.has("no-param") {
        learned
    } else {
        let jobs = jobs_of(args)?;
        let (full, stats) = derive_jobs(
            &learned,
            DeriveConfig::full(),
            CheckOptions::default(),
            jobs,
        );
        eprintln!(
            "parameterized to {} applicable rules ({} derived, {} rejected, {} verification jobs)",
            stats.instantiated, stats.derived, stats.rejected, jobs
        );
        if stats.quarantined > 0 || stats.fuel_exhausted > 0 {
            eprintln!(
                "degraded: {} candidates quarantined, {} verifications fuel-exhausted",
                stats.quarantined, stats.fuel_exhausted
            );
        }
        full
    };
    std::fs::write(out, save_rules(&rules)).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

/// `pdbt compile`: run the translate pipeline over one guest image and
/// seal everything a warm boot needs — ruleset, translated blocks,
/// superblock traces, guest-image fingerprint — into a `.pdba`
/// artifact for `pdbt serve --artifact-dir`.
///
/// The rules sealed in come from `--rules FILE` when given, from a
/// fresh train-and-parameterize pass over the synthetic suite by
/// default, or nowhere (`--baseline`, the pure QEMU-path engine).
fn cmd_compile(args: &Args) -> Result<(), String> {
    let out = args.value("out").ok_or("compile needs -o FILE.pdba")?;
    let target = args
        .positional
        .first()
        .ok_or("compile needs a WORKLOAD name or a PROG.s file")?;
    configure_faults(args)?;
    let jobs = jobs_of(args)?;

    // Resolve the guest image exactly like `serve` will, so the sealed
    // fingerprint matches the serving partition.
    let (prog, setup, default_label) = match bench_of(target) {
        Some(bench) => {
            let scale = match args.value("scale") {
                Some("full") => Scale::full(),
                _ => Scale::tiny(),
            };
            let scale_name = if args.value("scale") == Some("full") {
                "full"
            } else {
                "tiny"
            };
            eprintln!("building {target}/{scale_name}…");
            let w = pdbt::workloads::build(bench, scale);
            let setup = w.setup();
            (
                w.pair.guest.program.clone(),
                setup,
                format!("{target}/{scale_name}"),
            )
        }
        None => {
            let prog = load_program(target)?;
            let setup = RunSetup::basic(DATA_BASE, 0x1000, 0x8_0000, 0x1000);
            (prog, setup, "inline".to_string())
        }
    };
    let label = args.value("label").unwrap_or(&default_label);

    let rules = if let Some(p) = args.value("rules") {
        Some(load_rules_file(p)?.0)
    } else if args.has("baseline") {
        None
    } else {
        eprintln!("training over the synthetic suite…");
        let suite = pdbt::workloads::suite(Scale::tiny());
        let mut learned = RuleSet::new();
        for w in &suite {
            let mut r = RuleSet::new();
            pdbt::core::learning::learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
            learned.merge(r);
        }
        if args.has("no-param") {
            Some(learned)
        } else {
            let (full, stats) = derive_jobs(
                &learned,
                DeriveConfig::full(),
                CheckOptions::default(),
                jobs,
            );
            eprintln!(
                "parameterized to {} applicable rules ({} derived, {} rejected)",
                stats.instantiated, stats.derived, stats.rejected
            );
            Some(full)
        }
    };

    let mut cfg = EngineConfig {
        jobs,
        ..EngineConfig::default()
    };
    if let Some(b) = backend_of(args)? {
        cfg.backend = b;
    }
    let artifact = pdbt::artifact::compile(&prog, rules.as_ref(), &setup, cfg, label)?;
    let bytes = pdbt::artifact::seal(&artifact);
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "sealed {out}: image {:016x} ({label}), {} blocks, {} traces, {} rules, {} bytes",
        artifact.fingerprint(),
        artifact.blocks.len(),
        artifact.traces.len(),
        artifact.rules.as_ref().map_or(0, |r| r.len() + r.seq_len()),
        bytes.len()
    );
    Ok(())
}

/// Runs a guest program and returns its report (shared by `run` and
/// `stats`).
fn execute(args: &Args, verb: &str) -> Result<Report, String> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| format!("{verb} needs a program file"))?;
    let prog = load_program(path)?;
    configure_faults(args)?;
    let (rules, quarantined_rules) = match args.value("rules") {
        Some(p) => {
            let (r, q) = load_rules_file(p)?;
            (Some(r), q)
        }
        None => (None, 0),
    };
    let mut cfg = EngineConfig::default();
    cfg.translate.flag_delegation = !args.has("no-delegation");
    cfg.jobs = jobs_of(args)?;
    cfg.chaining = !args.has("no-chain");
    cfg.traces = !args.has("no-trace");
    if let Some(n) = args.value("trace-threshold") {
        cfg.trace_threshold = n
            .parse::<u32>()
            .map_err(|e| format!("bad --trace-threshold: {e}"))?;
    }
    if let Some(b) = backend_of(args)? {
        cfg.backend = b;
    }
    let mut engine = Engine::new(rules, cfg);
    engine.resilience_mut().quarantined_rules = quarantined_rules;
    let setup = RunSetup::basic(DATA_BASE, 0x1000, 0x8_0000, 0x1000);
    engine.run(&prog, &setup).map_err(|e| e.to_string())
}

/// Maps a non-`Completed` outcome to a process-level error *after* the
/// partial report has been printed and exported.
fn outcome_err(report: &Report) -> Result<(), String> {
    match &report.outcome {
        Outcome::Completed => Ok(()),
        Outcome::Budget => {
            Err("guest instruction budget exhausted (partial report emitted)".into())
        }
        Outcome::Deadline => Err("deadline exceeded (partial report emitted)".into()),
        Outcome::Exec(e) => Err(format!("execution fault: {e} (partial report emitted)")),
    }
}

/// Handles `--report-json FILE` and `--trace-out FILE`.
fn export_report(args: &Args, report: &Report) -> Result<(), String> {
    if let Some(out) = args.value("report-json") {
        std::fs::write(out, format!("{}\n", report.to_json()))
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    if let Some(out) = args.value("trace-out") {
        let (events, dropped) = pdbt::obs::drain_events();
        if !pdbt::obs::ENABLED {
            eprintln!("warning: built without the `obs` feature; trace is empty");
        } else if dropped > 0 {
            eprintln!("warning: trace ring overflowed, {dropped} early events dropped");
        }
        std::fs::write(out, export_chrome_trace(&events)).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {out} ({} events)", events.len());
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let report = execute(args, "run")?;
    for v in &report.output {
        println!("{v}");
    }
    if args.has("stats") {
        eprintln!("{}", report.metrics);
    }
    export_report(args, &report)?;
    outcome_err(&report)
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let report = execute(args, "stats")?;
    println!("metrics");
    println!("{}", report.metrics);
    let rules = &report.obs.rules;
    if rules.rows().is_empty() {
        println!("\nno rule attribution (ran without --rules)");
    } else {
        println!("\nper-rule attribution\n{rules}");
        println!("coverage by subgroup");
        for (subgroup, covered) in rules.coverage_by_subgroup() {
            println!("  {subgroup:<24} {covered:>12}");
        }
    }
    let misses = rules.misses();
    if !misses.is_empty() {
        let mut rows: Vec<_> = misses.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        println!("\ntop lookup misses");
        for (label, n) in rows.into_iter().take(10) {
            println!("  {label:<40} {n:>8}");
        }
    }
    if pdbt::obs::ENABLED {
        println!("\ntranslate latency (ns)\n{}", report.obs.translate_ns);
    }
    println!(
        "\nhost instructions per block execution\n{}",
        report.obs.block_host_len
    );
    println!(
        "\nflag-delegation window depth (catch-all = env fallback)\n{}",
        report.obs.deleg_depth
    );
    let d = &report.obs.dispatch;
    println!("\ndispatch (backend: {})", report.backend);
    println!(
        "  threaded compile  {:>12} blocks, {} ns",
        d.compiled_blocks, d.compile_ns
    );
    println!(
        "  jump cache        {:>12} hits, {} misses",
        d.jump_cache_hits, d.jump_cache_misses
    );
    println!(
        "  chaining          {:>12} followed, {} links resolved",
        d.chain_followed, d.links_resolved
    );
    println!(
        "  traces            {:>12} formed, {} superblock executions",
        d.traces_formed, d.trace_execs
    );
    println!("  invalidations     {:>12}", d.invalidations);
    let res = &report.resilience;
    if *res != Resilience::default() || report.outcome != Outcome::Completed {
        println!("\nresilience (outcome: {})", report.outcome.label());
        println!("  degraded blocks        {:>12}", res.degraded_blocks);
        println!("  interpreted guest      {:>12}", res.interpreted_guest);
        println!("  quarantined rules      {:>12}", res.quarantined_rules);
        println!("  quarantined combos     {:>12}", res.quarantined_combos);
        println!("  fuel exhausted         {:>12}", res.fuel_exhausted);
        for s in pdbt_faults::Site::ALL {
            if res.injected[s.index()] > 0 {
                println!(
                    "  injected[{:<7}]      {:>12}",
                    s.name(),
                    res.injected[s.index()]
                );
            }
        }
    }
    export_report(args, &report)?;
    outcome_err(&report)
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("trace needs a program file")?;
    let prog = load_program(path)?;
    let rules = match args.value("rules") {
        Some(p) => Some(load_rules_file(p)?.0),
        None => None,
    };
    let addr = match args.value("addr") {
        Some(hex) => u32::from_str_radix(hex.trim_start_matches("0x"), 16)
            .map_err(|e| format!("bad --addr: {e}"))?,
        None => prog.base(),
    };
    let block = translate_block(&prog, addr, rules.as_ref(), &TranslateConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "block {:#x}: {} guest instructions, {} rule-covered, {} host instructions",
        addr,
        block.guest_len,
        block.rule_covered,
        block.code.len()
    );
    for (inst, class) in block.code.iter().zip(&block.classes) {
        let tag = match class {
            CodeClass::RuleCore => "rule",
            CodeClass::QemuCore => "qemu",
            CodeClass::DataTransfer => "data",
            CodeClass::Control => "ctrl",
        };
        println!("  [{tag}] {inst}");
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let scale = scale_of(args);
    let only = args.positional.first().map(String::as_str);
    let suite = pdbt::workloads::suite(scale);
    println!(
        "{:<12}{:>10}{:>12}{:>10}",
        "benchmark", "coverage", "host/guest", "speedup"
    );
    for w in &suite {
        if let Some(name) = only {
            if w.bench.name() != name {
                continue;
            }
        }
        let golden = run_reference(w).map_err(|e| e.to_string())?;
        let learned = train_excluding(&suite, w.bench, LearnConfig::default());
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let qemu = run_dbt(w, None, true).map_err(|e| e.to_string())?;
        let para = run_dbt(w, Some(full), true).map_err(|e| e.to_string())?;
        if qemu.output != golden || para.output != golden {
            return Err(format!("{}: output mismatch", w.bench));
        }
        println!(
            "{:<12}{:>9.1}%{:>12.2}{:>9.2}x",
            w.bench.name(),
            para.metrics.coverage() * 100.0,
            para.metrics.total_ratio(),
            qemu.metrics.host_executed() as f64 / para.metrics.host_executed() as f64,
        );
    }
    Ok(())
}

/// Default daemon address shared by `serve` and `submit`.
const SERVE_ADDR: &str = "127.0.0.1:7411";

fn parse_u64_flag(args: &Args, name: &str) -> Result<Option<u64>, String> {
    match args.value(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("bad --{name}: {e}")),
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.value("addr").unwrap_or(SERVE_ADDR);
    let mut cfg = pdbt_serve::ServeConfig::default();
    if let Some(p) = args.value("rules") {
        cfg.rules = Some(load_rules_file(p)?.0);
    }
    if args.has("jobs") {
        cfg.jobs = jobs_of(args)?;
    }
    if let Some(b) = backend_of(args)? {
        cfg.backend = b;
    }
    cfg.default_deadline_ms = parse_u64_flag(args, "deadline-ms")?;
    cfg.flight_path = Some(args.value("flight-out").unwrap_or("flight.json").into());
    cfg.artifact_dir = args.value("artifact-dir").map(Into::into);
    cfg.peers = args
        .values("peer")
        .iter()
        .map(ToString::to_string)
        .collect();
    cfg.replicate_interval =
        parse_u64_flag(args, "replicate-interval")?.map(std::time::Duration::from_secs);
    let server = pdbt_serve::Server::bind(addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts scrape this line for the real port when binding to :0.
    println!(
        "pdbt-serve listening on {local} ({} session workers)",
        server.jobs()
    );
    let summary = server.serve().map_err(|e| e.to_string())?;
    eprintln!(
        "drained: served {} requests, {} panicked sessions",
        summary.requests, summary.panicked
    );
    if summary.panicked > 0 {
        return Err(format!("{} sessions panicked", summary.panicked));
    }
    Ok(())
}

/// `pdbt sync PEER -o DIR`: mirror a running daemon's sealed artifacts
/// into a directory. Each advertisement is pulled, validated against
/// the wire trust boundary, and written as `{fingerprint}-g{N}.pdba`,
/// so the directory is directly usable as another daemon's
/// `--artifact-dir`.
fn cmd_sync(args: &Args) -> Result<(), String> {
    let peer = args.positional.first().ok_or("sync needs a PEER address")?;
    let dir = std::path::PathBuf::from(args.value("out").ok_or("sync needs -o DIR")?);
    let timeout = std::time::Duration::from_secs(parse_u64_flag(args, "timeout-s")?.unwrap_or(120));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let ads = pdbt_serve::list_artifacts(peer.as_str(), timeout).map_err(|e| e.to_string())?;
    if ads.is_empty() {
        eprintln!("{peer}: no sealed artifacts to sync");
        return Ok(());
    }
    for ad in &ads {
        let pulled = pdbt_serve::pull_artifact(peer.as_str(), ad.fingerprint, timeout)
            .map_err(|e| format!("pull {:016x}: {e}", ad.fingerprint))?;
        pdbt::fleet::validate(&pulled.bytes, ad.fingerprint)
            .map_err(|e| format!("pull {:016x}: {e}", ad.fingerprint))?;
        let name = pdbt::fleet::artifact_file_name(pulled.fingerprint, pulled.generation);
        let path = dir.join(&name);
        std::fs::write(&path, &pulled.bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "synced {name}: {} ({} bytes)",
            pulled.label,
            pulled.bytes.len()
        );
    }
    eprintln!(
        "synced {} artifacts from {peer} into {}",
        ads.len(),
        dir.display()
    );
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let addr = args.value("addr").unwrap_or(SERVE_ADDR).to_string();
    let timeout = std::time::Duration::from_secs(parse_u64_flag(args, "timeout-s")?.unwrap_or(120));
    if args.has("ping") {
        let pong = pdbt_serve::ping(&addr, timeout).map_err(|e| e.to_string())?;
        println!("{pong}");
        return Ok(());
    }
    if args.has("shutdown") {
        let ack = pdbt_serve::shutdown(&addr, timeout).map_err(|e| e.to_string())?;
        println!("{ack}");
        return Ok(());
    }
    if args.has("stats") {
        let snap = pdbt_serve::stats(&addr, timeout).map_err(|e| e.to_string())?;
        print_stats(&snap);
        if let Some(path) = args.value("report-json") {
            std::fs::write(path, format!("{snap}\n")).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        return Ok(());
    }

    let mut req = vec![("id".to_string(), Json::from(std::process::id() as u64))];
    if let Some(name) = args.value("workload") {
        req.push(("workload".to_string(), Json::str(name)));
        req.push((
            "scale".to_string(),
            Json::str(args.value("scale").unwrap_or("tiny")),
        ));
    } else if let Some(path) = args.positional.first() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        req.push(("program".to_string(), Json::str(text)));
    } else {
        return Err("submit needs a PROG.s file or --workload BENCH".into());
    }
    if let Some(n) = parse_u64_flag(args, "max-guest")? {
        req.push(("max_guest".to_string(), Json::from(n)));
    }
    if let Some(n) = parse_u64_flag(args, "deadline-ms")? {
        req.push(("deadline_ms".to_string(), Json::from(n)));
    }
    if let Some(spec) = args.value("faults") {
        req.push(("faults".to_string(), Json::str(spec)));
    }
    if args.has("no-delegation") {
        req.push(("no_delegation".to_string(), Json::from(true)));
    }
    let request = Json::Obj(req.into_iter().collect());
    let resp = pdbt_serve::submit(&addr, &request, timeout).map_err(|e| e.to_string())?;

    let report = resp.get("report").ok_or("response carried no report")?;
    if let Some(out) = report.get("output").and_then(Json::as_arr) {
        for v in out {
            println!("{v}");
        }
    }
    if let Some(path) = args.value("report-json") {
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    match resp.get("outcome").and_then(Json::as_str) {
        Some("completed") => Ok(()),
        Some(other) => Err(format!(
            "run ended early: {other} (partial report received)"
        )),
        None => Err("response carried no outcome".into()),
    }
}

/// Human-scale duration: picks ns/µs/ms/s by magnitude.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Renders a STATS snapshot as a terminal table.
fn print_stats(snap: &Json) {
    let u = |v: Option<&Json>| v.and_then(Json::as_u64).unwrap_or(0);
    let f = |v: Option<&Json>| v.and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "pdbt-serve stats  seq {}  uptime {}  workers {}  outstanding {}",
        u(snap.get("stats_seq")),
        fmt_ns(u(snap.get("uptime_ns"))),
        u(snap.get("jobs")),
        u(snap.get("outstanding")),
    );
    let sess = snap.get("sessions");
    let pool = snap.get("pool");
    println!(
        "sessions  served {}  active {}  panicked {}  queue high-water {}",
        u(sess.and_then(|s| s.get("served"))),
        u(sess.and_then(|s| s.get("active"))),
        u(sess.and_then(|s| s.get("panicked"))),
        u(pool.and_then(|p| p.get("high_water"))),
    );
    let srv = snap.get("server");
    println!(
        "cache     probes {}  inserted {}  hits {}  hit rate {:.1}%  compiled {}",
        u(srv.and_then(|s| s.get("probes"))),
        u(srv.and_then(|s| s.get("inserted"))),
        u(srv.and_then(|s| s.get("hits"))),
        100.0 * f(srv.and_then(|s| s.get("hit_rate"))),
        u(srv.and_then(|s| s.get("compiled_blocks"))),
    );
    let lat = snap.get("latency").and_then(|l| l.get("request_ns"));
    println!(
        "latency   count {}  p50 {}  p95 {}  p99 {}",
        u(lat.and_then(|l| l.get("count"))),
        fmt_ns(u(lat.and_then(|l| l.get("p50")))),
        fmt_ns(u(lat.and_then(|l| l.get("p95")))),
        fmt_ns(u(lat.and_then(|l| l.get("p99")))),
    );
    if let Some(parts) = snap.get("partitions").and_then(Json::as_arr) {
        if !parts.is_empty() {
            println!(
                "\n{:<16}  {:>8}  {:>6}  {:>7}  {:>9}  {:>9}  {:>9}  label",
                "partition", "sessions", "hits", "probes", "p50", "p95", "p99"
            );
            for p in parts {
                let lat = p.get("latency");
                println!(
                    "{:<16}  {:>8}  {:>6}  {:>7}  {:>9}  {:>9}  {:>9}  {}",
                    p.get("partition").and_then(Json::as_str).unwrap_or("?"),
                    u(p.get("sessions")),
                    u(p.get("hits")),
                    u(p.get("probes")),
                    fmt_ns(u(lat.and_then(|l| l.get("p50")))),
                    fmt_ns(u(lat.and_then(|l| l.get("p95")))),
                    fmt_ns(u(lat.and_then(|l| l.get("p99")))),
                    p.get("label").and_then(Json::as_str).unwrap_or("?"),
                );
            }
        }
    }
    if let Some(flight) = snap.get("flight").and_then(Json::as_arr) {
        println!("\nflight tail ({} recent requests)", flight.len());
        for e in flight {
            let ph = e.get("phases");
            println!(
                "  #{:<5} {:<10} total {:>9}  queue {:>9}  translate {:>9}  reply {}B",
                u(e.get("seq")),
                e.get("outcome").and_then(Json::as_str).unwrap_or("?"),
                fmt_ns(u(ph.and_then(|p| p.get("total_ns")))),
                fmt_ns(u(ph.and_then(|p| p.get("queue_ns")))),
                fmt_ns(u(ph.and_then(|p| p.get("translate_ns")))),
                u(e.get("reply_bytes")),
            );
        }
    }
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let mut cfg = pdbt_serve::LoadgenConfig::default();
    if let Some(addr) = args.value("addr") {
        cfg.addr = addr
            .parse()
            .map_err(|e| format!("bad --addr {addr}: {e}"))?;
    }
    if let Some(n) = parse_u64_flag(args, "sessions")? {
        cfg.sessions = n as usize;
    }
    if let Some(n) = parse_u64_flag(args, "requests")? {
        cfg.requests = n as usize;
    }
    if let Some(n) = parse_u64_flag(args, "hot")? {
        cfg.hot = n as usize;
    }
    if let Some(n) = parse_u64_flag(args, "tail")? {
        cfg.tail = n as usize;
    }
    if let Some(n) = parse_u64_flag(args, "seed")? {
        cfg.seed = n;
    }
    if let Some(n) = parse_u64_flag(args, "poll-ms")? {
        cfg.poll_ms = n;
    }
    if let Some(n) = parse_u64_flag(args, "timeout-s")? {
        cfg.timeout = std::time::Duration::from_secs(n);
    }
    eprintln!(
        "loadgen: {} requests over {} sessions ({} hot + {} tail images, seed {}) -> {}",
        cfg.requests, cfg.sessions, cfg.hot, cfg.tail, cfg.seed, cfg.addr
    );
    let report = pdbt_serve::loadgen::run(&cfg)?;
    println!(
        "ok {}  failed {}  p50 {}  p99 {}  {:.1} sessions/s  warm-hit {:.1}%  ({} STATS polls)",
        report.ok,
        report.failed,
        fmt_ns(report.p50_ns),
        fmt_ns(report.p99_ns),
        report.sessions_per_sec,
        100.0 * report.warm_hit_ratio,
        report.stats_polls,
    );
    let out = args.value("out").unwrap_or("BENCH_serve.json");
    std::fs::write(out, format!("{}\n", report.to_json(&cfg)))
        .map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().map(String::as_str) else {
        return usage();
    };
    let args = Args::parse(
        &raw[1..],
        &[
            "scale",
            "exclude",
            "rules",
            "addr",
            "jobs",
            "faults",
            "report-json",
            "trace-out",
            "trace-threshold",
            "backend",
            "workload",
            "max-guest",
            "deadline-ms",
            "timeout-s",
            "flight-out",
            "sessions",
            "requests",
            "hot",
            "tail",
            "seed",
            "poll-ms",
            "out",
            "label",
            "artifact-dir",
            "peer",
            "replicate-interval",
        ],
    );
    let result = match cmd {
        "train" => cmd_train(&args),
        "compile" => cmd_compile(&args),
        "run" => cmd_run(&args),
        "stats" => cmd_stats(&args),
        "trace" => cmd_trace(&args),
        "bench" => cmd_bench(&args),
        "serve" => cmd_serve(&args),
        "sync" => cmd_sync(&args),
        "submit" => cmd_submit(&args),
        "loadgen" => cmd_loadgen(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
