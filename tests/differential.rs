//! Randomized differential testing: random guest programs must behave
//! identically on the reference interpreter, the QEMU-path DBT, and the
//! fully parameterized DBT.
//!
//! This is the runtime-correctness backstop for the whole stack: any
//! unsound rule derivation, mis-instantiated template, broken flag
//! delegation or translator bug shows up as an output divergence.
//!
//! Originally written with `proptest`; the offline build environment has
//! no crates.io access, so the strategies are hand-rolled samplers over
//! the deterministic in-tree PRNG (`pdbt-rng`, aliased as `rand`).

use pdbt::arm::{builders as g, Inst, MemAddr, Operand, Program, Reg, ShiftKind};
use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::core::RuleSet;
use pdbt::runtime::{Engine, EngineConfig, RunSetup};
use pdbt::workloads::{train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

const DATA_BASE: u32 = 0x10_0000;

/// Honour FUZZ_CASES when set; default to a CI-friendly 48.
fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// A parameterized rule set trained once for the whole run.
fn rules() -> &'static RuleSet {
    static RULES: OnceLock<RuleSet> = OnceLock::new();
    RULES.get_or_init(|| {
        let suite = pdbt::workloads::suite(Scale::tiny());
        let learned = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        full
    })
}

/// Registers the generated body may use (r1 holds the data base).
fn body_reg(rng: &mut StdRng) -> Reg {
    Reg::from_index(rng.gen_range(4..12)).unwrap()
}

fn op2(rng: &mut StdRng) -> Operand {
    match rng.gen_range(0..3) {
        0 => Operand::Reg(body_reg(rng)),
        1 => Operand::Imm(rng.gen_range(0u32..2048)),
        _ => Operand::Shifted {
            rm: body_reg(rng),
            kind: ShiftKind::ALL[rng.gen_range(0..4)],
            amount: rng.gen_range(1u8..32),
        },
    }
}

/// One safe straight-line instruction.
fn body_inst(rng: &mut StdRng) -> Inst {
    match rng.gen_range(0..14) {
        0 => {
            // Three-operand data processing (with optional S).
            type B = fn(Reg, Reg, Operand) -> Inst;
            const OPS: [B; 14] = [
                g::add,
                g::sub,
                g::and,
                g::orr,
                g::eor,
                g::bic,
                g::rsb,
                g::adc,
                g::sbc,
                g::rsc,
                g::lsl,
                g::lsr,
                g::asr,
                g::ror,
            ];
            let opi = rng.gen_range(0..14);
            let inst = OPS[opi](body_reg(rng), body_reg(rng), op2(rng));
            // Variable-amount flag-setting shifts and flag-setting
            // carry-chain ops (adcs/sbcs/rscs) are outside the
            // supported subset (the compiler never emits them).
            if rng.gen_bool(0.5) && opi < 7 {
                inst.with_s()
            } else {
                inst
            }
        }
        1 => {
            // Moves.
            let i = g::mov(body_reg(rng), op2(rng));
            if rng.gen_bool(0.5) {
                i.with_s()
            } else {
                i
            }
        }
        2 => g::mvn(body_reg(rng), op2(rng)),
        // Compares.
        3 => g::cmp(body_reg(rng), op2(rng)),
        4 => g::tst(body_reg(rng), op2(rng)),
        5 => g::cmn(body_reg(rng), op2(rng)),
        6 => g::teq(body_reg(rng), op2(rng)),
        // Multiplies and specials (the unlearnables must also run
        // correctly through the QEMU path).
        7 => g::mul(body_reg(rng), body_reg(rng), body_reg(rng)),
        8 => g::mla(body_reg(rng), body_reg(rng), body_reg(rng), body_reg(rng)),
        9 => g::clz(body_reg(rng), body_reg(rng)),
        // Memory within the data region: [r1 + small offset].
        10 => g::ldr(
            body_reg(rng),
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: rng.gen_range(0i32..0x3f0) & !3,
            },
        ),
        11 => g::str_(
            body_reg(rng),
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: rng.gen_range(0i32..0x3f0) & !3,
            },
        ),
        12 => g::ldrb(
            body_reg(rng),
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: rng.gen_range(0i32..0x3f0),
            },
        ),
        _ => g::strh(
            body_reg(rng),
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: rng.gen_range(0i32..0x3f0) & !1,
            },
        ),
    }
}

/// A body engineered to defeat condition-flag delegation: one flag
/// producer, then more intervening ALU instructions than the
/// delegation window tolerates before the conditional consumer. Non-S
/// guest ALU ops still lower to flag-clobbering host arithmetic, so
/// the translator must fall back to flags materialized in the
/// environment — the path the plain samplers rarely reach.
fn flag_fallback_body(rng: &mut StdRng) -> Vec<Inst> {
    let mut body = vec![match rng.gen_range(0..4) {
        0 => g::cmp(body_reg(rng), op2(rng)),
        1 => g::tst(body_reg(rng), op2(rng)),
        2 => g::sub(body_reg(rng), body_reg(rng), op2(rng)).with_s(),
        _ => g::add(body_reg(rng), body_reg(rng), op2(rng)).with_s(),
    }];
    type B = fn(Reg, Reg, Operand) -> Inst;
    const CLOBBER: [B; 6] = [g::add, g::sub, g::and, g::orr, g::eor, g::bic];
    for _ in 0..rng.gen_range(4..9) {
        body.push(CLOBBER[rng.gen_range(0..6)](
            body_reg(rng),
            body_reg(rng),
            op2(rng),
        ));
    }
    body
}

/// A program: base-pointer setup, seeded registers, a body with an
/// optional conditional forward skip, then every body register emitted.
fn program(body: Vec<Inst>, seeds: Vec<u32>, branch_at: Option<(usize, u8)>) -> Program {
    let mut insts = vec![
        g::mov(Reg::R1, Operand::Imm(DATA_BASE >> 12)),
        g::lsl(Reg::R1, Reg::R1, Operand::Imm(12)),
    ];
    for (i, v) in seeds.iter().enumerate() {
        insts.push(g::mov(Reg::from_index(4 + i).unwrap(), Operand::Imm(*v)));
    }
    let body_len = body.len();
    for (i, inst) in body.into_iter().enumerate() {
        if let Some((at, cond_idx)) = branch_at {
            if i == at && at + 2 < body_len {
                // Skip forward over two instructions (always in range).
                let cond = pdbt_isa::Cond::ALL[(cond_idx as usize) % 14];
                insts.push(g::b(cond, 12));
            }
        }
        insts.push(inst);
    }
    for i in 4..12 {
        insts.push(g::mov(Reg::R0, Operand::Reg(Reg::from_index(i).unwrap())));
        insts.push(g::svc(1));
    }
    insts.push(g::svc(0));
    Program::new(0x1000, insts)
}

fn run_reference(prog: &Program) -> Vec<u32> {
    let mut cpu = pdbt::arm::Cpu::new();
    cpu.mem.map(DATA_BASE, 0x1000);
    cpu.mem.map(0x8_0000, 0x1000);
    cpu.write(Reg::Sp, 0x8_1000);
    pdbt::arm::run(&mut cpu, prog, 100_000).expect("reference run");
    cpu.output
}

fn run_engine(prog: &Program, rules: Option<RuleSet>) -> Vec<u32> {
    let mut engine = Engine::new(rules, EngineConfig::default());
    let setup = RunSetup::basic(DATA_BASE, 0x1000, 0x8_0000, 0x1000);
    engine.run(prog, &setup).expect("engine run").output
}

/// A looped program: the body runs `iters` times under a counter in
/// `r2` (reserved; bodies only touch `r4..r11`), exercising the code
/// cache, block chaining, delegated loop branches and repeated flag
/// materialization.
fn loop_program(body: Vec<Inst>, seeds: Vec<u32>, iters: u32) -> Program {
    let mut insts = vec![
        g::mov(Reg::R1, Operand::Imm(DATA_BASE >> 12)),
        g::lsl(Reg::R1, Reg::R1, Operand::Imm(12)),
        g::mov(Reg::R2, Operand::Imm(iters)),
    ];
    for (i, v) in seeds.iter().enumerate() {
        insts.push(g::mov(Reg::from_index(4 + i).unwrap(), Operand::Imm(*v)));
    }
    let body_len = body.len() as i32;
    insts.extend(body);
    insts.push(g::sub(Reg::R2, Reg::R2, Operand::Imm(1)).with_s());
    insts.push(g::b(pdbt_isa::Cond::Ne, -4 * (body_len + 1)));
    for i in 4..12 {
        insts.push(g::mov(Reg::R0, Operand::Reg(Reg::from_index(i).unwrap())));
        insts.push(g::svc(1));
    }
    insts.push(g::svc(0));
    Program::new(0x1000, insts)
}

#[test]
fn random_programs_agree_across_translators() {
    let mut rng = StdRng::seed_from_u64(0xD1FF01);
    for _ in 0..cases() {
        let body: Vec<Inst> = (0..rng.gen_range(1..24))
            .map(|_| body_inst(&mut rng))
            .collect();
        let seeds: Vec<u32> = (0..8).map(|_| rng.gen_range(0u32..2048)).collect();
        let branch = rng
            .gen_bool(0.5)
            .then(|| (rng.gen_range(0usize..20), rng.gen_range(0..=u8::MAX)));
        let prog = program(body, seeds, branch);
        let golden = run_reference(&prog);
        let qemu = run_engine(&prog, None);
        assert_eq!(&qemu, &golden, "qemu path diverged");
        let para = run_engine(&prog, Some(rules().clone()));
        assert_eq!(&para, &golden, "parameterized path diverged");
    }
}

#[test]
fn flag_fallback_blocks_agree_across_translators() {
    use pdbt::runtime::{translate_block, DelegOutcome, TranslateConfig};
    let mut rng = StdRng::seed_from_u64(0xD1FF03);
    let mut fallbacks = 0usize;
    for _ in 0..cases() {
        let mut body = flag_fallback_body(&mut rng);
        let branch_at = body.len();
        for _ in 0..3 {
            body.push(body_inst(&mut rng));
        }
        let seeds: Vec<u32> = (0..8).map(|_| rng.gen_range(0u32..2048)).collect();
        let cond_idx = rng.gen_range(0..=u8::MAX);
        let prog = program(body, seeds, Some((branch_at, cond_idx)));
        let block = translate_block(&prog, 0x1000, Some(rules()), &TranslateConfig::default())
            .expect("block translates");
        if block.deleg == Some(DelegOutcome::EnvFallback) {
            fallbacks += 1;
        }
        let golden = run_reference(&prog);
        let qemu = run_engine(&prog, None);
        assert_eq!(&qemu, &golden, "qemu path diverged");
        let para = run_engine(&prog, Some(rules().clone()));
        assert_eq!(&para, &golden, "parameterized path diverged");
    }
    // The bias must actually land on the fallback path, not merely be
    // named after it.
    assert!(
        fallbacks * 2 > cases(),
        "sampler missed the delegation fallback: {fallbacks}/{} cases",
        cases()
    );
}

#[test]
fn random_loops_agree_across_translators() {
    let mut rng = StdRng::seed_from_u64(0xD1FF02);
    for _ in 0..cases() {
        let body: Vec<Inst> = (0..rng.gen_range(1..12))
            .map(|_| body_inst(&mut rng))
            .collect();
        let seeds: Vec<u32> = (0..8).map(|_| rng.gen_range(0u32..2048)).collect();
        let iters = rng.gen_range(1u32..20);
        let prog = loop_program(body, seeds, iters);
        let golden = run_reference(&prog);
        let qemu = run_engine(&prog, None);
        assert_eq!(&qemu, &golden, "qemu path diverged");
        let para = run_engine(&prog, Some(rules().clone()));
        assert_eq!(&para, &golden, "parameterized path diverged");
    }
}
