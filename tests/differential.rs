//! Property-based differential testing: random guest programs must
//! behave identically on the reference interpreter, the QEMU-path DBT,
//! and the fully parameterized DBT.
//!
//! This is the runtime-correctness backstop for the whole stack: any
//! unsound rule derivation, mis-instantiated template, broken flag
//! delegation or translator bug shows up as an output divergence.

use pdbt::arm::{builders as g, Inst, MemAddr, Operand, Program, Reg, ShiftKind};
use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::core::RuleSet;
use pdbt::runtime::{Engine, EngineConfig, RunSetup};
use pdbt::workloads::{train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;
use proptest::prelude::*;
use std::sync::OnceLock;

const DATA_BASE: u32 = 0x10_0000;

/// A parameterized rule set trained once for the whole property run.
fn rules() -> &'static RuleSet {
    static RULES: OnceLock<RuleSet> = OnceLock::new();
    RULES.get_or_init(|| {
        let suite = pdbt::workloads::suite(Scale::tiny());
        let learned = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        full
    })
}

/// Registers the generated body may use (r1 holds the data base).
fn body_reg() -> impl Strategy<Value = Reg> {
    (4usize..12).prop_map(|i| Reg::from_index(i).unwrap())
}

fn op2() -> impl Strategy<Value = Operand> {
    prop_oneof![
        body_reg().prop_map(Operand::Reg),
        (0u32..2048).prop_map(Operand::Imm),
        (body_reg(), 0usize..4, 1u8..32).prop_map(|(rm, k, amount)| Operand::Shifted {
            rm,
            kind: ShiftKind::ALL[k],
            amount,
        }),
    ]
}

/// One safe straight-line instruction.
fn body_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // Three-operand data processing (with optional S).
        (0usize..14, body_reg(), body_reg(), op2(), any::<bool>()).prop_map(
            |(opi, rd, rn, op2, s)| {
                type B = fn(Reg, Reg, Operand) -> Inst;
                const OPS: [B; 14] = [
                    g::add,
                    g::sub,
                    g::and,
                    g::orr,
                    g::eor,
                    g::bic,
                    g::rsb,
                    g::adc,
                    g::sbc,
                    g::rsc,
                    g::lsl,
                    g::lsr,
                    g::asr,
                    g::ror,
                ];
                let inst = OPS[opi](rd, rn, op2);
                // Variable-amount flag-setting shifts and flag-setting
                // carry-chain ops (adcs/sbcs/rscs) are outside the
                // supported subset (the compiler never emits them).
                let _ = inst.operands.len();
                if s && opi < 7 {
                    inst.with_s()
                } else {
                    inst
                }
            }
        ),
        // Moves.
        (body_reg(), op2(), any::<bool>()).prop_map(|(rd, op2, s)| {
            let i = g::mov(rd, op2);
            if s {
                i.with_s()
            } else {
                i
            }
        }),
        (body_reg(), op2()).prop_map(|(rd, op2)| g::mvn(rd, op2)),
        // Compares.
        (body_reg(), op2()).prop_map(|(rn, op2)| g::cmp(rn, op2)),
        (body_reg(), op2()).prop_map(|(rn, op2)| g::tst(rn, op2)),
        (body_reg(), op2()).prop_map(|(rn, op2)| g::cmn(rn, op2)),
        (body_reg(), op2()).prop_map(|(rn, op2)| g::teq(rn, op2)),
        // Multiplies and specials (the unlearnables must also run
        // correctly through the QEMU path).
        (body_reg(), body_reg(), body_reg()).prop_map(|(rd, rm, rs)| g::mul(rd, rm, rs)),
        (body_reg(), body_reg(), body_reg(), body_reg())
            .prop_map(|(rd, rm, rs, ra)| g::mla(rd, rm, rs, ra)),
        (body_reg(), body_reg()).prop_map(|(rd, rm)| g::clz(rd, rm)),
        // Memory within the data region: [r1 + small offset].
        (body_reg(), 0i32..0x3f0).prop_map(|(rt, off)| {
            g::ldr(
                rt,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: off & !3,
                },
            )
        }),
        (body_reg(), 0i32..0x3f0).prop_map(|(rt, off)| {
            g::str_(
                rt,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: off & !3,
                },
            )
        }),
        (body_reg(), 0i32..0x3f0).prop_map(|(rt, off)| {
            g::ldrb(
                rt,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: off,
                },
            )
        }),
        (body_reg(), 0i32..0x3f0).prop_map(|(rt, off)| {
            g::strh(
                rt,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: off & !1,
                },
            )
        }),
    ]
}

/// A program: base-pointer setup, seeded registers, a body with an
/// optional conditional forward skip, then every body register emitted.
fn program(body: Vec<Inst>, seeds: Vec<u32>, branch_at: Option<(usize, u8)>) -> Program {
    let mut insts = vec![
        g::mov(Reg::R1, Operand::Imm(DATA_BASE >> 12)),
        g::lsl(Reg::R1, Reg::R1, Operand::Imm(12)),
    ];
    for (i, v) in seeds.iter().enumerate() {
        insts.push(g::mov(Reg::from_index(4 + i).unwrap(), Operand::Imm(*v)));
    }
    let body_len = body.len();
    for (i, inst) in body.into_iter().enumerate() {
        if let Some((at, cond_idx)) = branch_at {
            if i == at && at + 2 < body_len {
                // Skip forward over two instructions (always in range).
                let cond = pdbt_isa::Cond::ALL[(cond_idx as usize) % 14];
                insts.push(g::b(cond, 12));
            }
        }
        insts.push(inst);
    }
    for i in 4..12 {
        insts.push(g::mov(Reg::R0, Operand::Reg(Reg::from_index(i).unwrap())));
        insts.push(g::svc(1));
    }
    insts.push(g::svc(0));
    Program::new(0x1000, insts)
}

fn run_reference(prog: &Program) -> Vec<u32> {
    let mut cpu = pdbt::arm::Cpu::new();
    cpu.mem.map(DATA_BASE, 0x1000);
    cpu.mem.map(0x8_0000, 0x1000);
    cpu.write(Reg::Sp, 0x8_1000);
    pdbt::arm::run(&mut cpu, prog, 100_000).expect("reference run");
    cpu.output
}

fn run_engine(prog: &Program, rules: Option<RuleSet>) -> Vec<u32> {
    let mut engine = Engine::new(rules, EngineConfig::default());
    let setup = RunSetup::basic(DATA_BASE, 0x1000, 0x8_0000, 0x1000);
    engine.run(prog, &setup).expect("engine run").output
}

/// A looped program: the body runs `iters` times under a counter in
/// `r2` (reserved; bodies only touch `r4..r11`), exercising the code
/// cache, block chaining, delegated loop branches and repeated flag
/// materialization.
fn loop_program(body: Vec<Inst>, seeds: Vec<u32>, iters: u32) -> Program {
    let mut insts = vec![
        g::mov(Reg::R1, Operand::Imm(DATA_BASE >> 12)),
        g::lsl(Reg::R1, Reg::R1, Operand::Imm(12)),
        g::mov(Reg::R2, Operand::Imm(iters)),
    ];
    for (i, v) in seeds.iter().enumerate() {
        insts.push(g::mov(Reg::from_index(4 + i).unwrap(), Operand::Imm(*v)));
    }
    let body_len = body.len() as i32;
    insts.extend(body);
    insts.push(g::sub(Reg::R2, Reg::R2, Operand::Imm(1)).with_s());
    insts.push(g::b(pdbt_isa::Cond::Ne, -4 * (body_len + 1)));
    for i in 4..12 {
        insts.push(g::mov(Reg::R0, Operand::Reg(Reg::from_index(i).unwrap())));
        insts.push(g::svc(1));
    }
    insts.push(g::svc(0));
    Program::new(0x1000, insts)
}

proptest! {
    #![proptest_config(ProptestConfig {
        // Honour PROPTEST_CASES when set; default to a CI-friendly 48.
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48),
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_programs_agree_across_translators(
        body in proptest::collection::vec(body_inst(), 1..24),
        seeds in proptest::collection::vec(0u32..2048, 8),
        branch in proptest::option::of((0usize..20, any::<u8>())),
    ) {
        let prog = program(body, seeds, branch);
        let golden = run_reference(&prog);
        let qemu = run_engine(&prog, None);
        prop_assert_eq!(&qemu, &golden, "qemu path diverged");
        let para = run_engine(&prog, Some(rules().clone()));
        prop_assert_eq!(&para, &golden, "parameterized path diverged");
    }

    #[test]
    fn random_loops_agree_across_translators(
        body in proptest::collection::vec(body_inst(), 1..12),
        seeds in proptest::collection::vec(0u32..2048, 8),
        iters in 1u32..20,
    ) {
        let prog = loop_program(body, seeds, iters);
        let golden = run_reference(&prog);
        let qemu = run_engine(&prog, None);
        prop_assert_eq!(&qemu, &golden, "qemu path diverged");
        let para = run_engine(&prog, Some(rules().clone()));
        prop_assert_eq!(&para, &golden, "parameterized path diverged");
    }
}
