//! The big hammer: every benchmark in the suite, under the fully
//! parameterized DBT and under the pure QEMU path, must reproduce the
//! reference interpreter's output exactly.

use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::workloads::{run_dbt, run_reference, train_excluding, Scale};
use pdbt_symexec::CheckOptions;

#[test]
fn all_twelve_benchmarks_are_translated_correctly() {
    let suite = pdbt::workloads::suite(Scale::tiny());
    for w in &suite {
        let golden = run_reference(w).unwrap_or_else(|e| panic!("{}: reference {e}", w.bench));
        let qemu = run_dbt(w, None, true).unwrap_or_else(|e| panic!("{}: qemu {e}", w.bench));
        assert_eq!(qemu.output, golden, "{}: qemu output", w.bench);

        let learned = train_excluding(&suite, w.bench, LearnConfig::default());
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let para = run_dbt(w, Some(full), true).unwrap_or_else(|e| panic!("{}: para {e}", w.bench));
        assert_eq!(para.output, golden, "{}: para output", w.bench);
        assert!(
            para.metrics.coverage() > 0.80,
            "{}: coverage {:.3}",
            w.bench,
            para.metrics.coverage()
        );
    }
}
