//! Cross-crate integration: the full paper pipeline at test scale.
//!
//! Builds the synthetic suite, trains leave-one-out, derives
//! parameterized rules, and runs several benchmarks under every system
//! configuration, checking output correctness against the reference
//! interpreter and the evaluation's headline orderings.

use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::workloads::{run_dbt, run_reference, train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;

fn targets() -> [Benchmark; 3] {
    [Benchmark::Mcf, Benchmark::Libquantum, Benchmark::Astar]
}

#[test]
fn every_configuration_is_correct_and_ordered() {
    let scale = Scale::tiny();
    let suite = pdbt::workloads::suite(scale);
    for target in targets() {
        let w = suite.iter().find(|w| w.bench == target).unwrap();
        let golden = run_reference(w).expect("reference runs");
        assert!(!golden.is_empty());

        let learned = train_excluding(&suite, target, LearnConfig::default());
        assert!(learned.len() > 20, "{target}: learned {}", learned.len());
        let (full, stats) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        assert!(stats.instantiated > stats.learned, "{target}: {stats:?}");

        let qemu = run_dbt(w, None, true).expect("qemu config");
        assert_eq!(qemu.output, golden, "{target}: qemu output");
        assert_eq!(qemu.metrics.coverage(), 0.0);

        let wo = run_dbt(w, Some(learned), false).expect("w/o para config");
        assert_eq!(wo.output, golden, "{target}: w/o para output");

        let para = run_dbt(w, Some(full), true).expect("para config");
        assert_eq!(para.output, golden, "{target}: para output");

        // Headline orderings (Figs 11/12): parameterization increases
        // coverage and reduces executed host instructions.
        assert!(
            para.metrics.coverage() > wo.metrics.coverage(),
            "{target}: coverage {} vs {}",
            para.metrics.coverage(),
            wo.metrics.coverage()
        );
        assert!(
            para.metrics.coverage() > 0.85,
            "{target}: {}",
            para.metrics.coverage()
        );
        assert!(
            para.metrics.host_executed() < qemu.metrics.host_executed(),
            "{target}: para {} vs qemu {}",
            para.metrics.host_executed(),
            qemu.metrics.host_executed()
        );
    }
}

#[test]
fn ablation_stages_are_monotone_in_coverage() {
    let scale = Scale::tiny();
    let suite = pdbt::workloads::suite(scale);
    let target = Benchmark::Sjeng;
    let w = suite.iter().find(|w| w.bench == target).unwrap();
    let learned = train_excluding(&suite, target, LearnConfig::default());
    let check = CheckOptions::default();
    let (opcode, _) = derive(&learned, DeriveConfig::opcode_only(), check);
    let (addr, _) = derive(&learned, DeriveConfig::opcode_addrmode(), check);
    let (full, _) = derive(&learned, DeriveConfig::full(), check);

    let c0 = run_dbt(w, Some(learned), false).unwrap().metrics.coverage();
    let c1 = run_dbt(w, Some(opcode), false).unwrap().metrics.coverage();
    let c2 = run_dbt(w, Some(addr), false).unwrap().metrics.coverage();
    let c3 = run_dbt(w, Some(full), true).unwrap().metrics.coverage();
    assert!(c0 <= c1 + 1e-9, "{c0} {c1}");
    assert!(c1 <= c2 + 1e-9, "{c1} {c2}");
    assert!(c2 < c3, "{c2} {c3}");
}

#[test]
fn unlearnable_instructions_fall_back_but_stay_correct() {
    // A program built around the paper's seven unlearnables.
    use pdbt::arm::{builders as g, Operand as O, Program, Reg};
    use pdbt::runtime::{Engine, EngineConfig, RunSetup};
    let prog = Program::new(
        0x1000,
        vec![
            g::mov(Reg::R4, O::Imm(0x321)),
            g::clz(Reg::R5, Reg::R4),                   // clz
            g::mla(Reg::R6, Reg::R5, Reg::R5, Reg::R4), // mla
            g::push([Reg::R4, Reg::R5]),                // push
            g::pop([Reg::R7, Reg::R8]),                 // pop
            g::bl(8),                                   // bl → f
            g::b(pdbt_isa::Cond::Al, 12),               // b → out
            g::add(Reg::R6, Reg::R6, O::Reg(Reg::R7)),  // f:
            g::bx(Reg::Lr),
            g::mov(Reg::R0, O::Reg(Reg::R6)), // out:
            g::svc(1),
            g::svc(0),
        ],
    );
    let scale = Scale::tiny();
    let suite = pdbt::workloads::suite(scale);
    let learned = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
    let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
    let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
    let mut engine = Engine::new(Some(full), EngineConfig::default());
    let report = engine.run(&prog, &setup).unwrap();
    // Reference.
    let mut cpu = pdbt::arm::Cpu::new();
    cpu.mem.map(0x10_0000, 0x1000);
    cpu.mem.map(0x8_0000, 0x1000);
    cpu.write(Reg::Sp, 0x8_1000);
    pdbt::arm::run(&mut cpu, &prog, 10_000).unwrap();
    assert_eq!(report.output, cpu.output);
    // The unlearnables kept coverage below 100%.
    assert!(report.metrics.coverage() < 1.0);
    assert!(report.metrics.coverage() > 0.0);
}
