//! End-to-end check of the machine-readable run report: drive the real
//! `pdbt` binary with `--report-json`, parse the file with the
//! serde-free JSON parser, and verify the attribution invariant — the
//! per-rule dynamic coverage counts sum to the engine's `rule_covered`
//! metric.

use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::{save_rules, RuleSet};
use pdbt::obs::json::Json;
use pdbt::workloads::{suite, Scale};
use pdbt_symexec::CheckOptions;
use std::process::Command;

const GUEST: &str = "\
mov r0, #5
mov r1, #0
add r1, r1, r0
subs r0, r0, #1
bne .-8
mov r0, r1
svc #1
svc #0
";

fn train_rules() -> String {
    let suite = suite(Scale::tiny());
    let mut learned = RuleSet::new();
    for w in &suite {
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
        learned.merge(r);
    }
    let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
    save_rules(&full)
}

#[test]
fn report_json_attribution_sums_to_rule_covered() {
    let dir = std::env::temp_dir().join(format!("pdbt-report-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("loop.s");
    let rules = dir.join("rules.txt");
    let report = dir.join("report.json");
    std::fs::write(&prog, GUEST).unwrap();
    std::fs::write(&rules, train_rules()).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_pdbt"))
        .args([
            "run",
            prog.to_str().unwrap(),
            "--rules",
            rules.to_str().unwrap(),
            "--report-json",
            report.to_str().unwrap(),
        ])
        .status()
        .expect("pdbt binary runs");
    assert!(status.success());

    let text = std::fs::read_to_string(&report).unwrap();
    let doc = Json::parse(&text).expect("report is valid JSON");

    let metrics = doc.get("metrics").expect("metrics object");
    let rule_covered = metrics
        .get("rule_covered")
        .and_then(|v| v.as_u64())
        .expect("rule_covered");
    assert!(rule_covered > 0, "trained run should cover instructions");

    // The attribution invariant, end to end through the binary.
    let rows = doc.get("rules").and_then(|r| r.as_arr()).expect("rules");
    let attributed: u64 = rows
        .iter()
        .map(|r| r.get("dyn_covered").and_then(|v| v.as_u64()).unwrap())
        .sum();
    assert_eq!(attributed, rule_covered);

    // Subgroup decomposition covers the same total.
    let by_subgroup: u64 = doc
        .get("coverage_by_subgroup")
        .and_then(|r| r.as_arr())
        .expect("coverage_by_subgroup")
        .iter()
        .map(|r| r.get("dyn_covered").and_then(|v| v.as_u64()).unwrap())
        .sum();
    assert_eq!(by_subgroup, rule_covered);

    // Histograms are present and consistent with the block counts.
    let hists = doc.get("histograms").expect("histograms");
    let blocks_executed = metrics
        .get("blocks_executed")
        .and_then(|v| v.as_u64())
        .unwrap();
    assert_eq!(
        hists
            .get("block_host_len")
            .and_then(|h| h.get("count"))
            .and_then(|v| v.as_u64()),
        Some(blocks_executed)
    );
    for key in ["translate_ns", "deleg_depth"] {
        assert!(hists.get(key).is_some(), "histogram {key} present");
    }

    // Per-class host counts are all present.
    let by_class = metrics.get("host_by_class").expect("host_by_class");
    for key in ["rule_core", "qemu_core", "data_transfer", "control"] {
        assert!(by_class.get(key).and_then(|v| v.as_u64()).is_some());
    }

    std::fs::remove_dir_all(&dir).ok();
}
