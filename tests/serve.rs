//! End-to-end lockdown of the `pdbt-serve` daemon over loopback TCP:
//! concurrent sessions sharing one warm code cache must be
//! *observationally indistinguishable* from sequential cold
//! single-engine runs — same output, same stripped report, byte for
//! byte — while the server-lifetime counters prove the sharing
//! actually happened.

use pdbt::obs::json::Json;
use pdbt::runtime::{Engine, EngineConfig, Report};
use pdbt::workloads::{build, Benchmark, Scale};
use pdbt_serve::{ping, shutdown, stats, submit, ServeConfig, ServeSummary, Server};
use std::net::SocketAddr;
use std::time::Duration;

/// Socket timeout for every client call; far above any tiny-scale run.
const T: Duration = Duration::from_secs(120);

fn spawn_server(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// A cold standalone run of the same corpus and configuration the
/// server uses per session (`EngineConfig::default()`, one thread).
fn oracle_run() -> Report {
    let w = build(Benchmark::Mcf, Scale::tiny());
    let mut engine = Engine::new(None, EngineConfig::default());
    engine
        .run(&w.pair.guest.program, &w.setup())
        .expect("oracle run")
}

/// Serializes a report with the two session-environment fields removed:
/// `histograms.translate_ns` (wall clock) and `server` (describes the
/// shared state, not the session). Everything else must match a cold
/// run exactly.
fn stripped(report: &Json) -> String {
    let mut doc = report.clone();
    if let Json::Obj(top) = &mut doc {
        top.remove("server");
        if let Some(Json::Obj(hists)) = top.get_mut("histograms") {
            hists.remove("translate_ns");
        }
        if let Some(Json::Obj(dispatch)) = top.get_mut("dispatch") {
            dispatch.remove("compile_ns");
        }
    }
    doc.to_string()
}

fn mcf_request(id: u64) -> Json {
    Json::obj([
        ("id", Json::from(id)),
        ("workload", Json::str("mcf")),
        ("scale", Json::str("tiny")),
    ])
}

fn report_of(resp: &Json) -> &Json {
    resp.get("report").expect("response carries a report")
}

#[test]
fn eight_concurrent_sessions_are_bit_identical_to_sequential_runs() {
    let oracle = oracle_run();
    let oracle_json = oracle.to_json();
    let blocks = oracle.metrics.blocks_translated;
    assert!(blocks > 0, "vacuous oracle");

    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 8,
        ..ServeConfig::default()
    });
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u64)
            .map(|i| s.spawn(move || submit(addr, &mcf_request(i), T).expect("submit")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for resp in &responses {
        assert_eq!(
            resp.get("outcome").and_then(Json::as_str),
            Some("completed"),
            "session did not complete: {resp}"
        );
        assert_eq!(
            stripped(report_of(resp)),
            stripped(&oracle_json),
            "a warm concurrent session's report diverged from the cold oracle"
        );
    }

    // The server-lifetime counters equal the sequential sum: each of
    // the 8 sessions probed each block once; blocks entered the shared
    // cache exactly once; everything else was a warm hit.
    let pong = ping(addr, T).expect("ping");
    let srv = pong.get("server").expect("server section");
    let field = |name: &str| srv.get(name).and_then(Json::as_u64).expect(name);
    assert_eq!(field("sessions"), 8);
    assert_eq!(field("inserted"), blocks);
    assert_eq!(field("probes"), 8 * blocks);
    assert_eq!(field("hits"), 7 * blocks);
    // Every reply reached its client: a dropped write would have been
    // counted, not silently discarded.
    assert_eq!(field("reply_errors"), 0);

    shutdown(addr, T).expect("shutdown");
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 8);
    assert_eq!(summary.panicked, 0);
}

#[test]
fn stats_polls_stay_monotone_and_sum_to_the_drain_summary() {
    let flight_path = std::env::temp_dir().join(format!("pdbt_flight_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&flight_path);
    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 4,
        flight_path: Some(flight_path.clone()),
        ..ServeConfig::default()
    });

    // STATS answers inline from the accept loop, so polls succeed even
    // while every session worker is busy — and the snapshot sequence a
    // single poller observes is strictly monotone.
    let polled = std::thread::scope(|s| {
        let submits: Vec<_> = (0..8u64)
            .map(|i| s.spawn(move || submit(addr, &mcf_request(i), T).expect("submit")))
            .collect();
        let mut last_seq = 0u64;
        let mut polls = 0u64;
        loop {
            let snap = stats(addr, T).expect("mid-flight STATS");
            let seq = snap.get("stats_seq").and_then(Json::as_u64).expect("seq");
            assert!(
                seq > last_seq,
                "stats_seq regressed: {seq} after {last_seq}"
            );
            last_seq = seq;
            polls += 1;
            if submits.iter().all(|h| h.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for h in submits {
            let resp = h.join().expect("client thread");
            assert_eq!(
                resp.get("outcome").and_then(Json::as_str),
                Some("completed")
            );
        }
        polls
    });
    assert!(polled >= 1, "no STATS poll overlapped the in-flight load");

    // Quiescent now: the final snapshot's counters must sum exactly to
    // what the 8 sessions did, across every view of the same traffic.
    let snap = stats(addr, T).expect("final STATS");
    let u = |path: &[&str]| {
        let mut v = &snap;
        for k in path {
            v = v.get(k).unwrap_or_else(|| panic!("missing {path:?}"));
        }
        v.as_u64().unwrap_or_else(|| panic!("non-u64 {path:?}"))
    };
    assert_eq!(u(&["sessions", "served"]), 8);
    assert_eq!(u(&["sessions", "active"]), 0);
    assert_eq!(u(&["sessions", "reply_errors"]), 0);
    assert_eq!(u(&["server", "sessions"]), 8);
    assert_eq!(u(&["latency", "request_ns", "count"]), 8);
    assert_eq!(u(&["latency", "reply_bytes", "count"]), 8);
    let parts = snap
        .get("partitions")
        .and_then(Json::as_arr)
        .expect("parts");
    let part_sessions: u64 = parts
        .iter()
        .map(|p| p.get("sessions").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(part_sessions, 8, "partition sessions must sum to served");
    for p in parts {
        let lat = p.get("latency").expect("partition latency");
        let q = |k: &str| lat.get(k).and_then(Json::as_u64).expect(k);
        assert!(q("p50") <= q("p95") && q("p95") <= q("p99"));
        // Without the obs feature `now_ns()` is a compiled-out zero, so
        // real latencies only exist in default builds.
        if cfg!(feature = "obs") {
            assert!(q("p99") > 0, "quantiles must be nonzero after real runs");
        }
    }
    let flight = snap.get("flight").and_then(Json::as_arr).expect("flight");
    assert_eq!(flight.len(), 8, "every request lands in the flight tail");
    let seqs: Vec<u64> = flight
        .iter()
        .map(|e| e.get("seq").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "flight sorted by seq");

    shutdown(addr, T).expect("shutdown");
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 8);
    assert_eq!(summary.panicked, 0);

    // Drain dumped the final snapshot to the flight file.
    let dumped = std::fs::read_to_string(&flight_path).expect("flight.json written on drain");
    let doc = Json::parse(&dumped).expect("flight.json parses");
    assert_eq!(
        doc.get("flight").and_then(Json::as_arr).map(<[Json]>::len),
        Some(8)
    );
    let _ = std::fs::remove_file(&flight_path);
}

#[test]
fn fault_armed_and_deadline_requests_leave_neighbours_untouched() {
    let oracle = oracle_run();
    let oracle_json = oracle.to_json();

    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 4,
        ..ServeConfig::default()
    });
    let (clean_a, clean_b, armed, expired) = std::thread::scope(|s| {
        let clean_a = s.spawn(move || submit(addr, &mcf_request(1), T).expect("clean a"));
        let clean_b = s.spawn(move || submit(addr, &mcf_request(2), T).expect("clean b"));
        let armed = s.spawn(move || {
            let mut req = mcf_request(3);
            if let Json::Obj(m) = &mut req {
                m.insert("faults".into(), Json::str("seed=7,rate=0.3,sites=cache"));
            }
            submit(addr, &req, T).expect("armed")
        });
        let expired = s.spawn(move || {
            let req = Json::obj([
                ("id", Json::from(4u64)),
                ("program", Json::str("mov r0, #1\nb .+0\nsvc #0\n")),
                ("deadline_ms", Json::from(0u64)),
            ]);
            submit(addr, &req, T).expect("expired")
        });
        (
            clean_a.join().unwrap(),
            clean_b.join().unwrap(),
            armed.join().unwrap(),
            expired.join().unwrap(),
        )
    });

    // The clean sessions must be untouched by the armed neighbour: no
    // injections, reports bit-identical to the cold oracle.
    for resp in [&clean_a, &clean_b] {
        assert_eq!(
            resp.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        assert_eq!(
            stripped(report_of(resp)),
            stripped(&oracle_json),
            "a clean session was perturbed by a fault-armed neighbour"
        );
    }

    // The armed session degrades gracefully: same guest output, run to
    // completion. (With the `faults` feature compiled out the plan is
    // inert and the report matches the oracle exactly.)
    assert_eq!(
        armed.get("outcome").and_then(Json::as_str),
        Some("completed")
    );
    assert_eq!(
        report_of(&armed).get("output"),
        oracle_json.get("output"),
        "fault-armed session corrupted guest output"
    );

    // The expired-deadline session reports `deadline`, with its partial
    // report delivered rather than an error.
    assert_eq!(
        expired.get("outcome").and_then(Json::as_str),
        Some("deadline")
    );
    assert!(report_of(&expired).get("metrics").is_some());

    shutdown(addr, T).expect("shutdown");
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.panicked, 0);
}
