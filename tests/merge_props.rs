//! Algebraic properties of the aggregation layer: `Metrics::merge` and
//! `RunObs::merge` must be associative, commutative (up to the sorted
//! export views), and have `default()` as identity.
//!
//! These laws are what make suite-level aggregation order-independent:
//! bench harnesses fold per-workload runs in arbitrary order, and the
//! parallel pipeline folds per-worker observations — any fold shape
//! must land on the same totals.
//!
//! Hand-rolled seeded fuzz loops over the in-tree PRNG (`pdbt-rng`,
//! aliased as `rand`) — the offline build has no proptest. Several obs
//! types carry no `PartialEq` (histograms, counter tables), so
//! equality is checked over a fingerprint of their exported views.

use pdbt::runtime::{Metrics, RunObs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzz iterations per law; FUZZ_CASES scales the whole file.
fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn random_metrics(rng: &mut StdRng) -> Metrics {
    let mut m = Metrics::default();
    m.guest_retired = rng.gen_range(0..1_000_000);
    m.rule_covered = rng.gen_range(0..m.guest_retired.max(1));
    m.host_by_class = [
        rng.gen_range(0..100_000),
        rng.gen_range(0..100_000),
        rng.gen_range(0..100_000),
        rng.gen_range(0..100_000),
    ];
    m.blocks_translated = rng.gen_range(0..1_000);
    m.blocks_executed = rng.gen_range(0..10_000);
    m.host_generated = rng.gen_range(0..50_000);
    m.host_retired = m.host_by_class.iter().sum();
    m
}

const LABELS: [&str; 6] = [
    "add r,r,#i",
    "sub r,r,r",
    "mov r,#i",
    "ldr",
    "str",
    "cmp r,#i",
];
const SUBGROUPS: [&str; 3] = ["alu-imm", "alu-reg", "mem"];

fn random_obs(rng: &mut StdRng) -> RunObs {
    let mut o = RunObs::default();
    for _ in 0..rng.gen_range(0..12) {
        // A label always carries the same subgroup (as in the real
        // pipeline, where the rule key determines its subgroup).
        let li = rng.gen_range(0..LABELS.len());
        let id = o.rules.intern(LABELS[li], SUBGROUPS[li % SUBGROUPS.len()]);
        o.rules.hit(id, rng.gen_range(0..50));
        o.rules.covered(id, rng.gen_range(0..5_000));
    }
    for _ in 0..rng.gen_range(0..6) {
        o.rules.miss(LABELS[rng.gen_range(0..LABELS.len())]);
    }
    for _ in 0..rng.gen_range(0..20) {
        o.translate_ns.record(rng.gen_range(0..2_000_000));
        o.block_host_len.record(rng.gen_range(0..200));
        o.deleg_depth.record(rng.gen_range(0..8));
    }
    for _ in 0..rng.gen_range(0..30) {
        let shard = rng.gen_range(0..8);
        if rng.gen_bool(0.7) {
            o.cache.record_hit(shard);
        } else {
            o.cache.record_miss(shard);
        }
    }
    for _ in 0..rng.gen_range(0..3) {
        let workers = rng.gen_range(1..5);
        let tasks: Vec<u64> = (0..workers).map(|_| rng.gen_range(0..40)).collect();
        o.pool.record(&tasks);
    }
    o
}

/// Order-independent digest of a `RunObs` through its sorted export
/// views (the underlying tables have no `PartialEq`).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    rules: Vec<(String, String, u64, u64)>,
    misses: Vec<(String, u64)>,
    by_subgroup: Vec<(String, u64)>,
    hists: Vec<(Vec<u64>, u64, u64, u64, u64)>,
    cache: (Vec<u64>, Vec<u64>),
    pool: Vec<u64>,
}

fn fingerprint(o: &RunObs) -> Fingerprint {
    let hist = |h: &pdbt::obs::Histogram| {
        (
            h.raw_counts().to_vec(),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
        )
    };
    Fingerprint {
        rules: o
            .rules
            .rows_by_coverage()
            .into_iter()
            .map(|r| {
                (
                    r.label.clone(),
                    r.subgroup.clone(),
                    r.static_hits,
                    r.dyn_covered,
                )
            })
            .collect(),
        misses: o
            .rules
            .misses()
            .into_iter()
            .map(|(l, n)| (l.to_string(), n))
            .collect(),
        by_subgroup: o.rules.coverage_by_subgroup(),
        hists: vec![
            hist(&o.translate_ns),
            hist(&o.block_host_len),
            hist(&o.deleg_depth),
        ],
        cache: (o.cache.hits().to_vec(), o.cache.misses().to_vec()),
        pool: o.pool.tasks().to_vec(),
    }
}

fn merged_metrics(a: &Metrics, b: &Metrics) -> Metrics {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn merged_obs(a: &RunObs, b: &RunObs) -> RunObs {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn metrics_merge_is_commutative_and_associative() {
    let mut rng = StdRng::seed_from_u64(0x4D45_0001);
    for _ in 0..cases() {
        let (a, b, c) = (
            random_metrics(&mut rng),
            random_metrics(&mut rng),
            random_metrics(&mut rng),
        );
        assert_eq!(merged_metrics(&a, &b), merged_metrics(&b, &a));
        assert_eq!(
            merged_metrics(&merged_metrics(&a, &b), &c),
            merged_metrics(&a, &merged_metrics(&b, &c)),
        );
    }
}

#[test]
fn metrics_merge_has_default_identity() {
    let mut rng = StdRng::seed_from_u64(0x4D45_0002);
    for _ in 0..cases() {
        let a = random_metrics(&mut rng);
        assert_eq!(merged_metrics(&a, &Metrics::default()), a);
        assert_eq!(merged_metrics(&Metrics::default(), &a), a);
    }
}

#[test]
fn run_obs_merge_is_commutative_and_associative() {
    let mut rng = StdRng::seed_from_u64(0x4D45_0003);
    for _ in 0..cases() {
        let (a, b, c) = (
            random_obs(&mut rng),
            random_obs(&mut rng),
            random_obs(&mut rng),
        );
        assert_eq!(
            fingerprint(&merged_obs(&a, &b)),
            fingerprint(&merged_obs(&b, &a)),
        );
        assert_eq!(
            fingerprint(&merged_obs(&merged_obs(&a, &b), &c)),
            fingerprint(&merged_obs(&a, &merged_obs(&b, &c))),
        );
    }
}

#[test]
fn run_obs_merge_has_default_identity() {
    let mut rng = StdRng::seed_from_u64(0x4D45_0004);
    for _ in 0..cases() {
        let a = random_obs(&mut rng);
        let fp = fingerprint(&a);
        assert_eq!(fingerprint(&merged_obs(&a, &RunObs::default())), fp);
        assert_eq!(fingerprint(&merged_obs(&RunObs::default(), &a)), fp);
    }
}
