//! Dispatch hot-path lockdown: block chaining, the direct-mapped jump
//! cache, and hot-trace superblocks are *transparent* optimizations —
//! architectural output and `guest_retired` must be bit-identical to
//! the unchained engine and to the pure reference interpreter, on every
//! workload, at every worker count, and across budget truncation.

use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::RuleSet;
use pdbt::obs::json::Json;
use pdbt::runtime::{Engine, EngineConfig, Outcome, Report, RunSetup};
use pdbt::workloads::{run_reference, suite, Scale, Workload};
use pdbt_isa_arm::{builders as g, Operand as O, Program, Reg};
use pdbt_symexec::CheckOptions;

/// An engine config with the dispatch fast path fully on and a low
/// promotion threshold, so the tiny-suite loops actually form traces.
fn chained_cfg() -> EngineConfig {
    EngineConfig {
        trace_threshold: 4,
        ..EngineConfig::default()
    }
}

/// The pre-chaining engine: no jump cache, no links, no traces.
fn unchained_cfg() -> EngineConfig {
    EngineConfig {
        chaining: false,
        traces: false,
        ..EngineConfig::default()
    }
}

fn run_with(w: &Workload, rules: Option<&RuleSet>, cfg: EngineConfig) -> Report {
    let mut engine = Engine::new(rules.cloned(), cfg);
    engine.run(&w.pair.guest.program, &w.setup()).expect("runs")
}

/// The paper's full rule set over the tiny suite (learned from all
/// benchmarks — this file tests dispatch, not the training protocol).
fn tiny_rules() -> RuleSet {
    let mut learned = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        learn_into(&mut learned, &w.pair, &w.debug, LearnConfig::default());
    }
    let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
    full
}

/// A two-level hot loop spanning three short blocks per inner
/// iteration — the shape the chaining fast path exists for.
fn hot_loop_program() -> Program {
    Program::new(
        0x1000,
        vec![
            g::mov(Reg::R0, O::Imm(40)),
            g::mov(Reg::R2, O::Imm(0)),
            g::mov(Reg::R1, O::Imm(25)),
            g::add(Reg::R2, Reg::R2, O::Reg(Reg::R1)),
            g::b(pdbt_isa::Cond::Al, 4),
            g::eor(Reg::R3, Reg::R2, O::Imm(0x55)),
            g::add(Reg::R2, Reg::R2, O::Imm(1)),
            g::b(pdbt_isa::Cond::Al, 4),
            g::sub(Reg::R1, Reg::R1, O::Imm(1)).with_s(),
            g::b(pdbt_isa::Cond::Ne, -24),
            g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(),
            g::b(pdbt_isa::Cond::Ne, -36),
            g::mov(Reg::R0, O::Reg(Reg::R2)),
            g::svc(1),
            g::svc(0),
        ],
    )
}

/// Chained and superblock dispatch must be invisible in the
/// architectural results across the whole workload suite, with and
/// without rules, against both the unchained engine and the reference
/// interpreter.
#[test]
fn chained_dispatch_is_architecturally_transparent_across_the_suite() {
    let rules = tiny_rules();
    let mut any_traces = false;
    for w in &suite(Scale::tiny()) {
        let golden = run_reference(w).expect("reference runs");
        for rules in [None, Some(&rules)] {
            let chained = run_with(w, rules, chained_cfg());
            let unchained = run_with(w, rules, unchained_cfg());
            let tag = format!(
                "{} ({})",
                w.bench,
                if rules.is_some() { "rules" } else { "qemu" }
            );
            assert_eq!(chained.output, golden, "{tag}: chained output diverged");
            assert_eq!(unchained.output, golden, "{tag}: unchained output diverged");
            assert_eq!(
                chained.metrics.guest_retired, unchained.metrics.guest_retired,
                "{tag}: guest_retired diverged"
            );
            assert_eq!(
                chained.metrics.rule_covered, unchained.metrics.rule_covered,
                "{tag}: rule_covered diverged"
            );
            assert_eq!(
                chained.metrics.host_retired,
                chained.metrics.host_executed(),
                "{tag}: class attribution lost host instructions"
            );
            assert_eq!(
                chained.obs.rules.total_covered(),
                chained.metrics.rule_covered,
                "{tag}: attribution no longer decomposes coverage"
            );
            let d = &chained.obs.dispatch;
            assert!(d.chain_followed > 0, "{tag}: chaining never engaged");
            any_traces |= d.traces_formed > 0;
            let u = &unchained.obs.dispatch;
            assert_eq!(
                (u.jump_cache_hits, u.chain_followed, u.traces_formed),
                (0, 0, 0),
                "{tag}: unchained engine used the fast path"
            );
        }
    }
    assert!(
        any_traces,
        "no workload formed a superblock — test is vacuous"
    );
}

/// Superblocks must form on a hot multi-block loop and keep output and
/// retirement identical, including partial (side-exit) executions.
#[test]
fn superblocks_form_and_preserve_architectural_results() {
    let prog = hot_loop_program();
    let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
    let mut chained = Engine::new(None, chained_cfg());
    let a = chained.run(&prog, &setup).expect("runs");
    let mut unchained = Engine::new(None, unchained_cfg());
    let b = unchained.run(&prog, &setup).expect("runs");
    assert_eq!(a.outcome, Outcome::Completed);
    assert_eq!(a.output, b.output);
    assert_eq!(a.metrics.guest_retired, b.metrics.guest_retired);
    assert_eq!(a.metrics.host_retired, a.metrics.host_executed());
    let d = &a.obs.dispatch;
    assert!(d.traces_formed > 0, "hot loop never promoted");
    assert!(d.trace_execs > 0, "superblock never executed");
    assert!(d.jump_cache_hits > 0, "jump cache never hit");
    // The reference interpreter agrees on output and retirement.
    let mut cpu = pdbt_isa_arm::Cpu::new();
    let stats = pdbt_isa_arm::run(&mut cpu, &prog, u64::MAX).expect("reference runs");
    assert_eq!(a.output, cpu.output);
    assert_eq!(a.metrics.guest_retired, stats.executed);
}

/// The budget guard: superblocks retire several blocks per execution,
/// so near the guest budget they must stand down — `guest_retired` at
/// the truncation point has to match the unchained engine exactly.
#[test]
fn budget_truncation_is_identical_chained_and_unchained() {
    let prog = hot_loop_program();
    for max_guest in [1, 7, 100, 1234, 2000] {
        let mut setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        setup.max_guest = max_guest;
        let mut chained = Engine::new(None, chained_cfg());
        let a = chained.run(&prog, &setup).expect("partial report");
        let mut unchained = Engine::new(None, unchained_cfg());
        let b = unchained.run(&prog, &setup).expect("partial report");
        assert_eq!(a.outcome, Outcome::Budget, "budget {max_guest}");
        assert_eq!(a.outcome, b.outcome, "budget {max_guest}");
        assert_eq!(
            a.metrics.guest_retired, b.metrics.guest_retired,
            "budget {max_guest}: retirement diverged"
        );
        assert_eq!(a.output, b.output, "budget {max_guest}: output diverged");
    }
}

/// The report JSON with the fields that legitimately depend on the
/// worker count removed: wall-clock timing, which engine translated a
/// block (lazy dispatch vs. prewarm changes static translation counts
/// and cache/pool traffic) — everything *dynamic* must be bit-identical.
fn strip_jobs_dependent(report: &Report) -> String {
    let mut doc = report.to_json();
    if let Json::Obj(top) = &mut doc {
        if let Some(Json::Obj(hists)) = top.get_mut("histograms") {
            hists.remove("translate_ns");
        }
        top.remove("cache");
        top.remove("pool");
        top.remove("server");
        top.remove("rules");
        top.remove("lookup_misses");
        if let Some(Json::Obj(metrics)) = top.get_mut("metrics") {
            metrics.remove("blocks_translated");
            metrics.remove("host_generated");
        }
        if let Some(Json::Obj(dispatch)) = top.get_mut("dispatch") {
            dispatch.remove("compile_ns");
        }
    }
    doc.to_string()
}

/// Chaining and trace promotion are driven purely by execution order,
/// which the prewarm worker count cannot change: with the fast path
/// fully on, `--jobs 1` and `--jobs 4` produce bit-identical stripped
/// reports — including every `dispatch` counter.
#[test]
fn chained_dispatch_is_deterministic_across_jobs() {
    let rules = tiny_rules();
    let workloads = suite(Scale::tiny());
    for w in workloads.iter().take(3) {
        let serial = run_with(w, Some(&rules), chained_cfg());
        let parallel = run_with(
            w,
            Some(&rules),
            EngineConfig {
                jobs: 4,
                ..chained_cfg()
            },
        );
        assert_eq!(
            strip_jobs_dependent(&serial),
            strip_jobs_dependent(&parallel),
            "{}: stripped reports diverged between jobs=1 and jobs=4",
            w.bench
        );
    }
}
