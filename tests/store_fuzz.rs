//! Fuzzes the persistence loaders against corrupted inputs.
//!
//! Two stores, one discipline: the text rule store (`save_rules` /
//! `load_rules_salvage`) and the binary PDBA translation artifact
//! (`seal` / `open_salvage`) both face seeded truncations, bit flips
//! and splices, and neither loader may ever panic. Salvage must keep
//! every healthy entry while quarantining exactly what the mutation
//! destroyed — and a damaged artifact must still *boot*, falling back
//! to cold translation for the quarantined sections with bit-identical
//! guest output. The same matrix is also delivered over the wire
//! (`ART_PUSH` against a live daemon), where the trust boundary is
//! stricter: any quarantine refuses the whole transfer.
//!
//! Hand-rolled seeded fuzz loops over the in-tree PRNG (`pdbt-rng`,
//! aliased as `rand`) — the offline build has no proptest.

use pdbt::artifact::{open_salvage, seal, section_table, warm_state};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::{load_rules, load_rules_salvage, save_rules, RuleSet};
use pdbt::runtime::{Engine, EngineConfig, RunSetup};
use pdbt::workloads::{suite, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Fuzz iterations per mutation class; FUZZ_CASES scales the file.
fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// A realistic store: everything learnable from the tiny suite.
fn healthy_store() -> String {
    let mut rules = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
        rules.merge(r);
    }
    let text = save_rules(&rules);
    assert!(
        text.is_ascii(),
        "store format is ASCII; mutations slice bytes"
    );
    assert!(
        text.lines().count() > 20,
        "store too small to fuzz usefully"
    );
    text
}

/// Neither loader panics on arbitrary prefixes of a valid store.
#[test]
fn truncation_never_panics() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_01);
    for _ in 0..cases() {
        let cut = rng.gen_range(0..text.len());
        let mutated = &text[..cut];
        let _ = load_rules(mutated);
        let (rules, quarantined) = load_rules_salvage(mutated);
        // Salvage of a prefix keeps only complete blocks; whatever the
        // cut destroyed is quarantined, never silently dropped, unless
        // the cut fell cleanly on a block boundary.
        let complete = load_rules(&blocks_before(&text, cut)).expect("prefix of valid store");
        assert_eq!(save_rules(&rules), save_rules(&complete));
        assert!(quarantined.len() <= 1, "a cut destroys at most one block");
    }
}

/// The longest prefix of `text` made of whole blocks ending before
/// byte `cut`.
fn blocks_before(text: &str, cut: usize) -> String {
    let mut out = String::new();
    let mut block = String::new();
    let mut pos = 0;
    for line in text.lines() {
        let end = pos + line.len() + 1; // '\n'
        if end > cut {
            break;
        }
        block.push_str(line);
        block.push('\n');
        if line.trim_end() == "end" || line.starts_with('#') || line.trim().is_empty() {
            out.push_str(&block);
            block.clear();
        }
        pos = end;
    }
    out
}

/// Neither loader panics on single-bit corruption, and salvage always
/// returns a loadable subset.
#[test]
fn bit_flips_never_panic() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_02);
    for _ in 0..cases() {
        let mut bytes = text.as_bytes().to_vec();
        for _ in 0..rng.gen_range(1..4u8) {
            let i = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u8);
            bytes[i] ^= 1 << bit;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = load_rules(&mutated);
        let (rules, _) = load_rules_salvage(&mutated);
        // The salvaged subset must itself round-trip.
        let text2 = save_rules(&rules);
        let (again, quarantined2) = load_rules_salvage(&text2);
        assert!(quarantined2.is_empty(), "salvaged output must be clean");
        assert_eq!(save_rules(&again), text2);
    }
}

/// Neither loader panics when whole lines are duplicated, dropped or
/// swapped.
#[test]
fn line_splices_never_panic() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_03);
    for _ in 0..cases() {
        let mut lines: Vec<&str> = text.lines().collect();
        match rng.gen_range(0..3u8) {
            0 => {
                let i = rng.gen_range(0..lines.len());
                let l = lines[i];
                lines.insert(i, l);
            }
            1 => {
                let i = rng.gen_range(0..lines.len());
                lines.remove(i);
            }
            _ => {
                let i = rng.gen_range(0..lines.len());
                let j = rng.gen_range(0..lines.len());
                lines.swap(i, j);
            }
        }
        let mutated = lines.join("\n");
        let _ = load_rules(&mutated);
        let (rules, _) = load_rules_salvage(&mutated);
        let _ = save_rules(&rules);
    }
}

/// Targeted corruption: poisoning one interior line of one block must
/// quarantine exactly that block, and the salvaged set must equal a
/// strict load of the store with that block deleted.
#[test]
fn targeted_corruption_quarantines_exactly_the_mutated_entry() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_04);
    let lines: Vec<&str> = text.lines().collect();
    // (header, end) line-index ranges of every block.
    let mut blocks = Vec::new();
    let mut start = None;
    for (i, line) in lines.iter().enumerate() {
        if line.starts_with("rule ") || line.starts_with("seq ") {
            start = Some(i);
        } else if line.trim_end() == "end" {
            if let Some(s) = start.take() {
                blocks.push((s, i));
            }
        }
    }
    assert!(!blocks.is_empty());
    for _ in 0..cases() {
        let &(s, e) = &blocks[rng.gen_range(0..blocks.len())];
        assert!(e > s + 1, "blocks have at least one body line");
        let victim = s + 1 + rng.gen_range(0..(e - s - 1));
        let mut mutated: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        mutated[victim] = "?? corrupted ??".to_string();
        let (rules, quarantined) = load_rules_salvage(&mutated.join("\n"));
        assert_eq!(
            quarantined.len(),
            1,
            "exactly the mutated block is quarantined"
        );
        let q = &quarantined[0];
        assert!(
            q.line > s && q.line <= e + 1,
            "quarantine points into the mutated block: line {} not in ({}, {}]",
            q.line,
            s,
            e + 1
        );
        // Deleting the block entirely gives the same surviving set.
        let without: Vec<&str> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < s || *i > e)
            .map(|(_, l)| *l)
            .collect();
        let expect = load_rules(&without.join("\n")).expect("remainder is valid");
        assert_eq!(save_rules(&rules), save_rules(&expect));
    }
}

// ---------------------------------------------------------------------
// PDBA artifact corruption matrix
// ---------------------------------------------------------------------

/// A hot two-block loop at `0x1000`: enough to fill every artifact
/// section (blocks, two superblock traces, an embedded ruleset).
fn fuzz_program() -> pdbt::arm::Program {
    let insts = pdbt::arm::parse_listing(
        "mov r0, #100\nmov r1, #0\nadd r1, r1, r0\nb .+4\n\
         subs r0, r0, #1\nbne .-12\nmov r0, r1\nsvc #1\nsvc #0\n",
    )
    .expect("fixture assembles");
    pdbt::arm::Program::new(0x1000, insts)
}

fn fuzz_setup() -> RunSetup {
    RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000)
}

/// The shared fixture: a sealed artifact with every section populated,
/// plus the reference-interpreter output of its guest program.
fn sealed_fixture() -> &'static (Vec<u8>, Vec<u32>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u32>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rules = RuleSet::new();
        for w in &suite(Scale::tiny()) {
            let mut r = RuleSet::new();
            learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
            rules.merge(r);
        }
        let prog = fuzz_program();
        let artifact = pdbt::artifact::compile(
            &prog,
            Some(&rules),
            &fuzz_setup(),
            EngineConfig::default(),
            "fuzz-fixture",
        )
        .expect("fixture compiles");
        assert!(!artifact.blocks.is_empty() && !artifact.traces.is_empty());
        assert!(artifact.rules.is_some());

        let mut cpu = pdbt::arm::Cpu::new();
        cpu.mem.map(0x10_0000, 0x1000);
        cpu.mem.map(0x8_0000, 0x1000);
        cpu.write(pdbt::arm::Reg::Sp, 0x8_0000 + 0x1000);
        pdbt::arm::run(&mut cpu, &prog, 1_000_000).expect("reference run");
        (seal(&artifact), cpu.output)
    })
}

/// Boots an engine from an opened artifact and checks the guest output
/// is bit-identical to the reference interpreter, with the quarantine
/// count surfaced in the report.
fn boot_and_check(opened: &pdbt::artifact::Opened, golden: &[u32]) {
    let expected_quarantined = opened.quarantined.len() as u64;
    let shared = std::sync::Arc::new(warm_state(opened, None, 8, 1));
    let mut engine = Engine::with_shared(shared, EngineConfig::default());
    let report = engine
        .run(&fuzz_program(), &fuzz_setup())
        .expect("degraded boot still runs");
    let out: Vec<u32> = report.output.clone();
    assert_eq!(out, golden, "degraded artifact boot diverged from oracle");
    assert_eq!(report.artifact.quarantined_sections, expected_quarantined);
}

/// `open_salvage` never panics on arbitrary prefixes; when a prefix
/// still opens, the damage is confined to counted quarantines and the
/// boot stays bit-identical.
#[test]
fn artifact_truncation_never_panics_and_boots_cold() {
    let (bytes, golden) = sealed_fixture();
    let mut rng = StdRng::seed_from_u64(0xA7_7E_01);
    let mut opened_some = false;
    for _ in 0..cases() {
        let cut = rng.gen_range(0..bytes.len());
        match open_salvage(&bytes[..cut]) {
            Ok(opened) => {
                opened_some = true;
                boot_and_check(&opened, golden);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    // A cut inside the last (TRCE) payload keeps the header valid, so
    // at least some prefixes must open in salvage mode.
    let table = section_table(bytes).unwrap();
    let trce_mid = (table[4].1.start + table[4].1.end) / 2;
    let opened = open_salvage(&bytes[..trce_mid]).expect("mid-TRCE cut salvages");
    assert_eq!(opened.quarantined.len(), 1);
    assert_eq!(opened.quarantined[0].section, "TRCE");
    boot_and_check(&opened, golden);
    assert!(opened_some || cases() == 0);
}

/// One- and two-bit flips anywhere in the file: guaranteed CRC-visible,
/// so every flip either rejects the artifact, quarantines a section, or
/// lands in slack the loaders never trusted — and any successful open
/// still boots bit-identically.
#[test]
fn artifact_bit_flips_never_panic_and_never_corrupt_a_boot() {
    let (bytes, golden) = sealed_fixture();
    let mut rng = StdRng::seed_from_u64(0xA7_7E_02);
    for _ in 0..cases() {
        let mut mutated = bytes.clone();
        for _ in 0..rng.gen_range(1..3u8) {
            let i = rng.gen_range(0..mutated.len());
            mutated[i] ^= 1 << rng.gen_range(0..8u8);
        }
        if let Ok(opened) = open_salvage(&mutated) {
            boot_and_check(&opened, golden);
        }
    }
}

/// Splices: whole chunks copied over other chunks, and section payloads
/// swapped wholesale. Never a panic; successful opens still boot.
#[test]
fn artifact_splices_never_panic() {
    let (bytes, golden) = sealed_fixture();
    let mut rng = StdRng::seed_from_u64(0xA7_7E_03);
    for _ in 0..cases() {
        let mut mutated = bytes.clone();
        let len = mutated.len();
        let chunk = rng.gen_range(1..=32usize.min(len));
        let src = rng.gen_range(0..=len - chunk);
        let dst = rng.gen_range(0..=len - chunk);
        let copied: Vec<u8> = mutated[src..src + chunk].to_vec();
        mutated[dst..dst + chunk].copy_from_slice(&copied);
        if let Ok(opened) = open_salvage(&mutated) {
            boot_and_check(&opened, golden);
        }
    }
}

/// Targeted per-section damage: poisoning one payload byte of a
/// non-boundary section quarantines exactly that section (the rest
/// loads), the boot degrades cold for it, and the guest output stays
/// bit-identical. Damage to the trust boundary (header, GIMG) rejects
/// the whole artifact instead — cold fallback, never an abort.
#[test]
fn artifact_section_damage_quarantines_exactly_that_section() {
    let (bytes, golden) = sealed_fixture();
    let table = section_table(bytes).unwrap();
    let mut rng = StdRng::seed_from_u64(0xA7_7E_04);
    let salvageable = ["META", "RULE", "BLKS", "TRCE"];
    for _ in 0..cases() {
        let (tag, range) = &table[rng.gen_range(0..table.len())];
        if range.is_empty() {
            continue;
        }
        let mut mutated = bytes.clone();
        let i = rng.gen_range(range.start..range.end);
        mutated[i] ^= 1 << rng.gen_range(0..8u8);
        if salvageable.contains(&tag.as_str()) {
            let opened = open_salvage(&mutated).expect("section damage must salvage");
            assert_eq!(
                opened.quarantined.len(),
                1,
                "exactly one section quarantined for damage in {tag}"
            );
            assert_eq!(&opened.quarantined[0].section, tag);
            boot_and_check(&opened, golden);
        } else {
            // GIMG is the trust boundary: reject the whole artifact.
            let err = open_salvage(&mutated).expect_err("image damage must reject");
            let _ = err.to_string();
        }
    }
    // Header damage (the declared fingerprint bytes sit before the
    // payload area) is caught by the header CRC.
    let mut mutated = bytes.clone();
    let payload_start = table[0].1.start;
    mutated[payload_start - 5] ^= 0x40;
    assert!(open_salvage(&mutated).is_err(), "header damage must reject");
}

// ---------------------------------------------------------------------
// The corruption matrix over the wire: ART_PUSH / ART_PULL against a
// live daemon
// ---------------------------------------------------------------------

/// Every class of artifact damage, delivered over `ART_PUSH` to a live
/// daemon: the receiver must never panic, must refuse every damaged
/// offer (counted in `fleet.rejected`, with quarantined sections also
/// landing in `artifacts.sections_quarantined`), and after the pristine
/// artifact is finally adopted, a `SUBMIT` of the same guest must run
/// translate-free with the golden output. The pull path is closed the
/// same way: a pulled artifact is bit-identical to the pristine seal,
/// and client-side `pdbt::fleet::validate` refuses any post-pull
/// mutation.
#[test]
fn wire_delivered_corruption_is_rejected_and_serving_stays_golden() {
    use pdbt::obs::json::Json;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(120);
    let (bytes, golden) = sealed_fixture();
    let table = section_table(bytes).unwrap();
    let fp = fuzz_program().fingerprint();
    let mut rng = StdRng::seed_from_u64(0xA7_7E_05);

    let server =
        pdbt_serve::Server::bind("127.0.0.1:0", pdbt_serve::ServeConfig::default()).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    // Generations strictly increase across offers so a refusal is
    // always the trust boundary's verdict, never staleness.
    let mut generation = 0u64;
    let mut push = |mutated: &[u8], declared: u64| -> Json {
        generation += 1;
        pdbt_serve::push_artifact(addr, declared, generation, "fuzz", mutated, T).expect("push")
    };

    let salvageable = ["META", "RULE", "BLKS", "TRCE"];
    let (mut rejected, mut quarantined) = (0u64, 0u64);

    // One poisoned payload byte per section: salvageable sections
    // quarantine (refused wholesale on the wire), GIMG damage rejects
    // the open outright.
    for (tag, range) in &table {
        if range.is_empty() {
            continue;
        }
        let mut mutated = bytes.clone();
        let i = rng.gen_range(range.start..range.end);
        mutated[i] ^= 1 << rng.gen_range(0..8u8);
        let verdict = push(&mutated, fp);
        assert_eq!(
            verdict.get("adopted"),
            Some(&Json::from(false)),
            "damaged {tag} was adopted: {verdict}"
        );
        rejected += 1;
        if salvageable.contains(&tag.as_str()) {
            quarantined += 1;
        }
    }

    // A truncated transfer: opens in salvage mode with one quarantined
    // section — still refused on the wire.
    let trce_mid = (table[4].1.start + table[4].1.end) / 2;
    let verdict = push(&bytes[..trce_mid], fp);
    assert_eq!(verdict.get("adopted"), Some(&Json::from(false)));
    rejected += 1;
    quarantined += 1;

    // A pristine artifact under a lying fingerprint: refused.
    let verdict = push(bytes, fp ^ 1);
    assert_eq!(verdict.get("adopted"), Some(&Json::from(false)));
    rejected += 1;

    // Nothing was adopted; every refusal was counted where the disk
    // scan counts the same damage.
    let pong = pdbt_serve::ping(addr, T).expect("ping");
    assert_eq!(pong.get("images").and_then(Json::as_u64), Some(0));
    let fleet = pong.get("fleet").expect("fleet section");
    assert_eq!(fleet.get("rejected").and_then(Json::as_u64), Some(rejected));
    assert_eq!(fleet.get("adopted").and_then(Json::as_u64), Some(0));
    let arts = pong.get("artifacts").expect("artifacts section");
    assert_eq!(
        arts.get("sections_quarantined").and_then(Json::as_u64),
        Some(quarantined)
    );

    // The pristine artifact is adopted, and the daemon then serves the
    // fixture guest translate-free with the golden output.
    let verdict = push(bytes, fp);
    assert_eq!(verdict.get("adopted"), Some(&Json::from(true)), "{verdict}");
    let req = Json::obj([
        ("id", Json::from(1u64)),
        (
            "program",
            Json::str(
                "mov r0, #100\nmov r1, #0\nadd r1, r1, r0\nb .+4\n\
                 subs r0, r0, #1\nbne .-12\nmov r0, r1\nsvc #1\nsvc #0\n",
            ),
        ),
    ]);
    let resp = pdbt_serve::submit(addr, &req, T).expect("submit");
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed")
    );
    let out: Vec<u64> = resp
        .get("report")
        .and_then(|r| r.get("output"))
        .and_then(Json::as_arr)
        .expect("output")
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    let want: Vec<u64> = golden.iter().map(|&v| u64::from(v)).collect();
    assert_eq!(out, want, "wire-adopted artifact corrupted the guest");
    let pong = pdbt_serve::ping(addr, T).expect("ping");
    let srv = pong.get("server").expect("server section");
    assert_eq!(srv.get("translate_calls").and_then(Json::as_u64), Some(0));

    // The pull path: the transfer is bit-identical to the pristine
    // seal, and any post-pull mutation fails client-side validation.
    let pulled = pdbt_serve::pull_artifact(addr, fp, T).expect("pull");
    assert_eq!(&pulled.bytes, bytes, "pulled artifact is not bit-identical");
    pdbt::fleet::validate(&pulled.bytes, fp).expect("pristine pull validates");
    for _ in 0..8 {
        let mut mutated = pulled.bytes.clone();
        let i = rng.gen_range(0..mutated.len());
        mutated[i] ^= 1 << rng.gen_range(0..8u8);
        if mutated == pulled.bytes {
            continue;
        }
        assert!(
            pdbt::fleet::validate(&mutated, fp).is_err()
                || open_salvage(&mutated)
                    .map(|o| seal(&o.artifact) == *bytes)
                    .unwrap_or(false),
            "a post-pull mutation slipped past client-side validation"
        );
    }

    pdbt_serve::shutdown(addr, T).expect("shutdown");
    assert_eq!(handle.join().unwrap().panicked, 0);
}

/// Swapping two whole section payloads (same artifact, valid CRCs
/// recorded for the *other* section) quarantines both — content is
/// bound to its declared section, not just to a checksum.
#[test]
fn artifact_section_swap_quarantines_both_sections() {
    let (bytes, golden) = sealed_fixture();
    let table = section_table(bytes).unwrap();
    let (blks, trce) = (&table[3].1, &table[4].1);
    // Splice TRCE's payload over the front of BLKS (and vice versa is
    // covered by CRC): both sections now fail their checksums.
    let mut mutated = bytes.clone();
    let n = blks.len().min(trce.len());
    assert!(n > 0, "fixture has both blocks and traces");
    let trce_head: Vec<u8> = mutated[trce.start..trce.start + n].to_vec();
    let blks_head: Vec<u8> = mutated[blks.start..blks.start + n].to_vec();
    mutated[blks.start..blks.start + n].copy_from_slice(&trce_head);
    mutated[trce.start..trce.start + n].copy_from_slice(&blks_head);
    let opened = open_salvage(&mutated).expect("section swap must salvage");
    let mut hit: Vec<&str> = opened
        .quarantined
        .iter()
        .map(|q| q.section.as_str())
        .collect();
    hit.sort_unstable();
    assert_eq!(hit, ["BLKS", "TRCE"]);
    assert!(opened.artifact.blocks.is_empty());
    assert!(opened.artifact.traces.is_empty());
    boot_and_check(&opened, golden);
}
