//! Fuzzes the rule-store loaders against corrupted inputs: seeded
//! truncations, bit flips and line splices of real `save_rules` output.
//! Neither loader may ever panic — `load_rules` may reject, and
//! `load_rules_salvage` must keep every healthy block while
//! quarantining exactly the entries the mutation destroyed.
//!
//! Hand-rolled seeded fuzz loops over the in-tree PRNG (`pdbt-rng`,
//! aliased as `rand`) — the offline build has no proptest.

use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::{load_rules, load_rules_salvage, save_rules, RuleSet};
use pdbt::workloads::{suite, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzz iterations per mutation class; FUZZ_CASES scales the file.
fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// A realistic store: everything learnable from the tiny suite.
fn healthy_store() -> String {
    let mut rules = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
        rules.merge(r);
    }
    let text = save_rules(&rules);
    assert!(
        text.is_ascii(),
        "store format is ASCII; mutations slice bytes"
    );
    assert!(
        text.lines().count() > 20,
        "store too small to fuzz usefully"
    );
    text
}

/// Neither loader panics on arbitrary prefixes of a valid store.
#[test]
fn truncation_never_panics() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_01);
    for _ in 0..cases() {
        let cut = rng.gen_range(0..text.len());
        let mutated = &text[..cut];
        let _ = load_rules(mutated);
        let (rules, quarantined) = load_rules_salvage(mutated);
        // Salvage of a prefix keeps only complete blocks; whatever the
        // cut destroyed is quarantined, never silently dropped, unless
        // the cut fell cleanly on a block boundary.
        let complete = load_rules(&blocks_before(&text, cut)).expect("prefix of valid store");
        assert_eq!(save_rules(&rules), save_rules(&complete));
        assert!(quarantined.len() <= 1, "a cut destroys at most one block");
    }
}

/// The longest prefix of `text` made of whole blocks ending before
/// byte `cut`.
fn blocks_before(text: &str, cut: usize) -> String {
    let mut out = String::new();
    let mut block = String::new();
    let mut pos = 0;
    for line in text.lines() {
        let end = pos + line.len() + 1; // '\n'
        if end > cut {
            break;
        }
        block.push_str(line);
        block.push('\n');
        if line.trim_end() == "end" || line.starts_with('#') || line.trim().is_empty() {
            out.push_str(&block);
            block.clear();
        }
        pos = end;
    }
    out
}

/// Neither loader panics on single-bit corruption, and salvage always
/// returns a loadable subset.
#[test]
fn bit_flips_never_panic() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_02);
    for _ in 0..cases() {
        let mut bytes = text.as_bytes().to_vec();
        for _ in 0..rng.gen_range(1..4u8) {
            let i = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u8);
            bytes[i] ^= 1 << bit;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = load_rules(&mutated);
        let (rules, _) = load_rules_salvage(&mutated);
        // The salvaged subset must itself round-trip.
        let text2 = save_rules(&rules);
        let (again, quarantined2) = load_rules_salvage(&text2);
        assert!(quarantined2.is_empty(), "salvaged output must be clean");
        assert_eq!(save_rules(&again), text2);
    }
}

/// Neither loader panics when whole lines are duplicated, dropped or
/// swapped.
#[test]
fn line_splices_never_panic() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_03);
    for _ in 0..cases() {
        let mut lines: Vec<&str> = text.lines().collect();
        match rng.gen_range(0..3u8) {
            0 => {
                let i = rng.gen_range(0..lines.len());
                let l = lines[i];
                lines.insert(i, l);
            }
            1 => {
                let i = rng.gen_range(0..lines.len());
                lines.remove(i);
            }
            _ => {
                let i = rng.gen_range(0..lines.len());
                let j = rng.gen_range(0..lines.len());
                lines.swap(i, j);
            }
        }
        let mutated = lines.join("\n");
        let _ = load_rules(&mutated);
        let (rules, _) = load_rules_salvage(&mutated);
        let _ = save_rules(&rules);
    }
}

/// Targeted corruption: poisoning one interior line of one block must
/// quarantine exactly that block, and the salvaged set must equal a
/// strict load of the store with that block deleted.
#[test]
fn targeted_corruption_quarantines_exactly_the_mutated_entry() {
    let text = healthy_store();
    let mut rng = StdRng::seed_from_u64(0x57_0e_04);
    let lines: Vec<&str> = text.lines().collect();
    // (header, end) line-index ranges of every block.
    let mut blocks = Vec::new();
    let mut start = None;
    for (i, line) in lines.iter().enumerate() {
        if line.starts_with("rule ") || line.starts_with("seq ") {
            start = Some(i);
        } else if line.trim_end() == "end" {
            if let Some(s) = start.take() {
                blocks.push((s, i));
            }
        }
    }
    assert!(!blocks.is_empty());
    for _ in 0..cases() {
        let &(s, e) = &blocks[rng.gen_range(0..blocks.len())];
        assert!(e > s + 1, "blocks have at least one body line");
        let victim = s + 1 + rng.gen_range(0..(e - s - 1));
        let mut mutated: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        mutated[victim] = "?? corrupted ??".to_string();
        let (rules, quarantined) = load_rules_salvage(&mutated.join("\n"));
        assert_eq!(
            quarantined.len(),
            1,
            "exactly the mutated block is quarantined"
        );
        let q = &quarantined[0];
        assert!(
            q.line > s && q.line <= e + 1,
            "quarantine points into the mutated block: line {} not in ({}, {}]",
            q.line,
            s,
            e + 1
        );
        // Deleting the block entirely gives the same surviving set.
        let without: Vec<&str> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < s || *i > e)
            .map(|(_, l)| *l)
            .collect();
        let expect = load_rules(&without.join("\n")).expect("remainder is valid");
        assert_eq!(save_rules(&rules), save_rules(&expect));
    }
}
