//! Bit-identity lockdown for sealed translation artifacts.
//!
//! An artifact-booted engine must be *observationally
//! indistinguishable* from a cold one: same guest output, same stripped
//! report, byte for byte — across differently degraded training
//! corpora, across engine worker counts, and across concurrent serve
//! sessions answering off one loaded artifact. The artifact bytes
//! themselves must be a fixpoint: `compile → seal → open → seal`
//! reproduces the file exactly, and compiling twice produces identical
//! bytes.
//!
//! The guest-image fingerprint is part of the sealed format, so its
//! value for a known program is pinned here as a regression test — any
//! drift silently orphans every artifact ever written.

use pdbt::artifact::{open_salvage, seal, warm_state};
use pdbt::compiler::{degrade, DegradeProfile};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::RuleSet;
use pdbt::obs::json::Json;
use pdbt::runtime::{Engine, EngineConfig, Report, RunSetup};
use pdbt::workloads::{build, suite, Benchmark, Scale};
use pdbt_serve::{ping, shutdown, submit, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const SEEDS: [u64; 3] = [0xDE7_001, 0xDE7_002, 0xDE7_003];

/// Fuzz iterations for the randomized fixpoint loop; FUZZ_CASES scales.
fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// A learned rule set over the tiny suite with seed-specific extra
/// debug-map degradation (the `tests/determinism.rs` corpora): each
/// seed trains on a distinct corpus, so artifact identity is proven
/// over three different rule sets, not one lucky input.
fn learned_for(seed: u64) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = DegradeProfile {
        drop: 0.15,
        merge: 0.08,
        skew: 0.05,
    };
    let mut learned = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        let debug = degrade(&w.debug, profile, &mut rng);
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &debug, LearnConfig::default());
        learned.merge(r);
    }
    learned
}

/// The report JSON with the session-environment fields removed (see
/// `tests/determinism.rs`): `histograms.translate_ns` is wall clock,
/// the `server` section describes the shared state a session ran
/// against — including the artifact boot counters, which legitimately
/// differ between a cold and a warm engine — and `pool` records which
/// worker ran each prewarm task, a work-stealing schedule that shifts
/// when warm tasks complete instantly. Everything else must be
/// bit-identical.
fn stripped_report(report: &Report) -> String {
    stripped(&report.to_json())
}

fn stripped(doc: &Json) -> String {
    let mut doc = doc.clone();
    if let Json::Obj(top) = &mut doc {
        top.remove("server");
        top.remove("pool");
        if let Some(Json::Obj(hists)) = top.get_mut("histograms") {
            hists.remove("translate_ns");
        }
        if let Some(Json::Obj(dispatch)) = top.get_mut("dispatch") {
            dispatch.remove("compile_ns");
        }
    }
    doc.to_string()
}

/// The stable fingerprint of a known program is pinned: this exact
/// value is sealed inside every artifact and keys the serve daemon's
/// partition map, so changing the hash silently orphans every artifact
/// ever written. If this assertion fires, you changed the fingerprint
/// function — bump `pdbt::artifact::FORMAT_VERSION` instead of updating
/// the constant.
#[test]
fn image_fingerprint_is_pinned_for_a_known_program() {
    let insts = pdbt::arm::parse_listing("mov r0, #41\nadd r0, r0, #1\nsvc #1\nsvc #0\n").unwrap();
    let prog = pdbt::arm::Program::new(0x1000, insts);
    assert_eq!(prog.fingerprint(), 0xb22c_388e_f903_e5ae);

    // And it is sensitive to what it must be sensitive to.
    let moved = pdbt::arm::Program::new(0x2000, prog.insts().to_vec());
    assert_ne!(moved.fingerprint(), prog.fingerprint());
    let edited = pdbt::arm::parse_listing("mov r0, #42\nadd r0, r0, #1\nsvc #1\nsvc #0\n").unwrap();
    assert_ne!(
        pdbt::arm::Program::new(0x1000, edited).fingerprint(),
        prog.fingerprint()
    );
}

/// Artifact-booted runs are bit-identical to cold runs across three
/// degraded corpora and across `jobs = 1` vs `jobs = 4` (the parallel
/// prewarm must not perturb a warm session any more than a cold one).
#[test]
fn artifact_boot_is_bit_identical_to_cold_runs() {
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    for seed in SEEDS {
        let rules = learned_for(seed);
        let artifact = pdbt::artifact::compile(
            &w.pair.guest.program,
            Some(&rules),
            &w.setup(),
            EngineConfig::default(),
            "capstone",
        )
        .expect("compile");
        let opened = open_salvage(&seal(&artifact)).expect("open");
        assert!(opened.quarantined.is_empty());

        for jobs in [1usize, 4] {
            let cfg = EngineConfig {
                jobs,
                ..EngineConfig::default()
            };
            let mut cold_engine = Engine::new(Some(rules.clone()), cfg);
            let cold = cold_engine
                .run(&w.pair.guest.program, &w.setup())
                .expect("cold run");

            let shared = Arc::new(warm_state(&opened, None, 8, jobs));
            let mut warm_engine = Engine::with_shared(shared, cfg);
            let warm = warm_engine
                .run(&w.pair.guest.program, &w.setup())
                .expect("warm run");

            assert_eq!(
                warm.output, cold.output,
                "seed {seed:#x} jobs {jobs}: guest output diverged"
            );
            assert_eq!(
                stripped_report(&warm),
                stripped_report(&cold),
                "seed {seed:#x} jobs {jobs}: warm report diverged from cold"
            );
            // The warm session did zero live translation work.
            assert_eq!(warm.server.translate_calls, 0, "seed {seed:#x} jobs {jobs}");
            assert_eq!(warm.server.inserted, 0, "seed {seed:#x} jobs {jobs}");
            assert!(warm.artifact.warm());
            assert!(!cold.artifact.warm());
        }
    }
}

/// `compile → seal → open → seal` is a byte-level fixpoint, and
/// compiling the same input twice seals identical bytes — over the
/// three degraded corpora and a seeded loop of randomized straight-line
/// guest programs.
#[test]
fn seal_open_seal_is_a_byte_fixpoint() {
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    for seed in SEEDS {
        let rules = learned_for(seed);
        let once = pdbt::artifact::compile(
            &w.pair.guest.program,
            Some(&rules),
            &w.setup(),
            EngineConfig::default(),
            "fixpoint",
        )
        .expect("compile");
        let twice = pdbt::artifact::compile(
            &w.pair.guest.program,
            Some(&rules),
            &w.setup(),
            EngineConfig::default(),
            "fixpoint",
        )
        .expect("recompile");
        let bytes = seal(&once);
        assert_eq!(
            bytes,
            seal(&twice),
            "seed {seed:#x}: compile is not deterministic"
        );
        let opened = open_salvage(&bytes).expect("open");
        assert_eq!(
            seal(&opened.artifact),
            bytes,
            "seed {seed:#x}: seal(open(seal)) diverged"
        );
    }
}

/// Randomized-workload fixpoint: seeded straight-line ALU programs,
/// each compiled, sealed, reopened, resealed, and warm-booted against
/// its own cold run.
#[test]
fn randomized_programs_roundtrip_and_boot_identically() {
    let mut rng = StdRng::seed_from_u64(0xF1_4B_07);
    let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
    for case in 0..cases() {
        let mut text = String::new();
        for _ in 0..rng.gen_range(1..12usize) {
            let d = rng.gen_range(0..4u8);
            let a = rng.gen_range(0..4u8);
            match rng.gen_range(0..4u8) {
                0 => text.push_str(&format!("mov r{d}, #{}\n", rng.gen_range(0..100u32))),
                1 => text.push_str(&format!("add r{d}, r{a}, #{}\n", rng.gen_range(0..100u32))),
                2 => text.push_str(&format!("sub r{d}, r{a}, #{}\n", rng.gen_range(0..100u32))),
                _ => text.push_str(&format!("mul r{d}, r{a}, r{}\n", rng.gen_range(0..4u8))),
            }
        }
        text.push_str("svc #1\nsvc #0\n");
        let insts = pdbt::arm::parse_listing(&text).expect("generated program assembles");
        let prog = pdbt::arm::Program::new(0x1000, insts);

        let artifact =
            pdbt::artifact::compile(&prog, None, &setup, EngineConfig::default(), "rand")
                .unwrap_or_else(|e| panic!("case {case}: compile failed: {e}\n{text}"));
        let bytes = seal(&artifact);
        let opened = open_salvage(&bytes).expect("open");
        assert!(opened.quarantined.is_empty(), "case {case}");
        assert_eq!(seal(&opened.artifact), bytes, "case {case}: not a fixpoint");

        let cold = Engine::new(None, EngineConfig::default())
            .run(&prog, &setup)
            .expect("cold run");
        let shared = Arc::new(warm_state(&opened, None, 8, 1));
        let warm = Engine::with_shared(shared, EngineConfig::default())
            .run(&prog, &setup)
            .expect("warm run");
        assert_eq!(warm.output, cold.output, "case {case}");
        assert_eq!(
            stripped_report(&warm),
            stripped_report(&cold),
            "case {case}: warm report diverged"
        );
        assert_eq!(warm.server.translate_calls, 0, "case {case}");
    }
}

/// Two concurrent serve sessions answering off one disk-loaded artifact
/// are bit-identical to sequential cold oracle runs, with zero live
/// translation work on the server.
#[test]
fn concurrent_serve_sessions_off_one_artifact_match_the_cold_oracle() {
    const T: Duration = Duration::from_secs(120);
    let w = build(Benchmark::Mcf, Scale::tiny());
    // The serve oracle configuration: no rules, default engine.
    let artifact = pdbt::artifact::compile(
        &w.pair.guest.program,
        None,
        &w.setup(),
        EngineConfig::default(),
        "mcf/tiny",
    )
    .expect("compile");
    let mut oracle_engine = Engine::new(None, EngineConfig::default());
    let oracle = oracle_engine
        .run(&w.pair.guest.program, &w.setup())
        .expect("oracle");
    let blocks = oracle.metrics.blocks_translated;
    assert!(blocks > 0, "vacuous oracle");

    let dir = std::env::temp_dir().join(format!("pdbt-artifact-capstone-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("mcf.pdba"), seal(&artifact)).unwrap();

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            jobs: 2,
            artifact_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    let req = |id: u64| {
        Json::obj([
            ("id", Json::from(id)),
            ("workload", Json::str("mcf")),
            ("scale", Json::str("tiny")),
        ])
    };
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2u64)
            .map(|i| s.spawn(move || submit(addr, &req(i), T).expect("submit")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let oracle_json = oracle.to_json();
    for resp in &responses {
        assert_eq!(
            resp.get("outcome").and_then(Json::as_str),
            Some("completed")
        );
        let report = resp.get("report").expect("report");
        assert_eq!(
            stripped(report),
            stripped(&oracle_json),
            "a warm session diverged from the sequential cold oracle"
        );
    }

    // Zero live translation: both sessions were answered entirely from
    // the artifact. Every probe is a warm hit.
    let pong = ping(addr, T).expect("ping");
    let srv = pong.get("server").expect("server section");
    let field = |name: &str| srv.get(name).and_then(Json::as_u64).expect(name);
    assert_eq!(field("sessions"), 2);
    assert_eq!(field("translate_calls"), 0);
    assert_eq!(field("inserted"), 0);
    assert_eq!(field("probes"), 2 * blocks);
    assert_eq!(field("hits"), 2 * blocks);
    let arts = pong.get("artifacts").expect("artifacts section");
    assert_eq!(arts.get("loaded").and_then(Json::as_u64), Some(1));
    assert_eq!(arts.get("rejected").and_then(Json::as_u64), Some(0));

    shutdown(addr, T).expect("shutdown");
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.panicked, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
