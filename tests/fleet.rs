//! End-to-end lockdown of the fleet replication plane: a follower
//! daemon that pulls its warm state from a peer must serve its *first*
//! request with zero live translation work and a stripped report
//! bit-identical to a sequential cold run — the paper's
//! train-once-amortize-forever economics extended across machines.
//! Drain write-back must re-seal a grown partition to the same
//! byte-level fixpoint `pdbt compile` produces, and pushed artifacts
//! must obey the generation order.

use pdbt::artifact::{open_salvage, seal, warm_state};
use pdbt::fleet::artifact_file_name;
use pdbt::obs::json::Json;
use pdbt::runtime::{Engine, EngineConfig, Report};
use pdbt::workloads::{build, Benchmark, Scale};
use pdbt_serve::{ping, push_artifact, shutdown, submit, ServeConfig, ServeSummary, Server};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Socket timeout for every client call; far above any tiny-scale run.
const T: Duration = Duration::from_secs(120);

fn spawn_server(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// A cold standalone run of the corpus and configuration the server
/// uses per session (`EngineConfig::default()`, one thread).
fn oracle_run() -> Report {
    let w = build(Benchmark::Mcf, Scale::tiny());
    let mut engine = Engine::new(None, EngineConfig::default());
    engine
        .run(&w.pair.guest.program, &w.setup())
        .expect("oracle run")
}

/// The report with the session-environment fields removed (see
/// `tests/artifact.rs`): `server` (shared-state counters), `pool`
/// (work-stealing schedule, which shifts when warm tasks complete
/// instantly), and the wall-clock histograms. Everything else must be
/// bit-identical between a replicated warm session and a cold run.
fn stripped(report: &Json) -> String {
    let mut doc = report.clone();
    if let Json::Obj(top) = &mut doc {
        top.remove("server");
        top.remove("pool");
        if let Some(Json::Obj(hists)) = top.get_mut("histograms") {
            hists.remove("translate_ns");
        }
        if let Some(Json::Obj(dispatch)) = top.get_mut("dispatch") {
            dispatch.remove("compile_ns");
        }
    }
    doc.to_string()
}

fn mcf_request(id: u64) -> Json {
    Json::obj([
        ("id", Json::from(id)),
        ("workload", Json::str("mcf")),
        ("scale", Json::str("tiny")),
    ])
}

fn fleet_field(pong: &Json, name: &str) -> u64 {
    pong.get("fleet")
        .and_then(|f| f.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("fleet.{name} missing in {pong}"))
}

fn server_field(pong: &Json, name: &str) -> u64 {
    pong.get("server")
        .and_then(|s| s.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("server.{name} missing in {pong}"))
}

/// The capstone: warm a leader with one run, boot a follower with
/// `--peer leader`, and lock down that the follower's *first* request
/// does zero live translation and reports bit-identically to a
/// sequential cold run.
#[test]
fn follower_first_request_is_translate_free_and_bit_identical() {
    let oracle = oracle_run();
    let oracle_json = oracle.to_json();
    let blocks = oracle.metrics.blocks_translated;
    assert!(blocks > 0, "vacuous oracle");

    let (leader, leader_h) = spawn_server(ServeConfig {
        jobs: 2,
        ..ServeConfig::default()
    });
    let resp = submit(leader, &mcf_request(1), T).expect("leader warm-up");
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed")
    );

    // `bind` runs the boot pull before returning, so the follower is
    // warm before it accepts its first connection.
    let (follower, follower_h) = spawn_server(ServeConfig {
        jobs: 2,
        peers: vec![leader.to_string()],
        ..ServeConfig::default()
    });
    let pong = ping(follower, T).expect("follower ping");
    assert_eq!(pong.get("images").and_then(Json::as_u64), Some(1));
    assert_eq!(fleet_field(&pong, "pulled"), 1);
    assert_eq!(fleet_field(&pong, "adopted"), 1);
    assert_eq!(fleet_field(&pong, "rejected"), 0);
    assert!(fleet_field(&pong, "bytes") > 0);

    let first = submit(follower, &mcf_request(2), T).expect("follower first request");
    assert_eq!(
        first.get("outcome").and_then(Json::as_str),
        Some("completed")
    );
    assert_eq!(
        stripped(first.get("report").expect("report")),
        stripped(&oracle_json),
        "the follower's first request diverged from the sequential cold oracle"
    );

    // Zero live translation on the follower: every block came over the
    // wire, every probe was a warm hit.
    let pong = ping(follower, T).expect("follower ping");
    assert_eq!(server_field(&pong, "sessions"), 1);
    assert_eq!(server_field(&pong, "translate_calls"), 0);
    assert_eq!(server_field(&pong, "inserted"), 0);
    assert_eq!(server_field(&pong, "hits"), blocks);
    assert_eq!(server_field(&pong, "reply_errors"), 0);

    // The leader counted the serve side of the transfer.
    let pong = ping(leader, T).expect("leader ping");
    assert_eq!(fleet_field(&pong, "pushed"), 1);

    shutdown(follower, T).expect("follower shutdown");
    shutdown(leader, T).expect("leader shutdown");
    assert_eq!(follower_h.join().unwrap().panicked, 0);
    assert_eq!(leader_h.join().unwrap().panicked, 0);
}

/// Drain write-back: a partition grown live (no artifact on disk) is
/// sealed to `--artifact-dir` as generation 0, the file is a byte
/// fixpoint under `seal(open(…))`, and warm-booting it reproduces the
/// cold run exactly — the write-back path is `pdbt compile` by other
/// means.
#[test]
fn drain_write_back_seals_grown_partitions_to_a_fixpoint() {
    let dir = std::env::temp_dir().join(format!("pdbt-fleet-wb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 1,
        artifact_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let resp = submit(addr, &mcf_request(1), T).expect("submit");
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed")
    );
    shutdown(addr, T).expect("shutdown");
    assert_eq!(handle.join().unwrap().panicked, 0);

    let w = build(Benchmark::Mcf, Scale::tiny());
    let fp = w.pair.guest.program.fingerprint();
    let path = dir.join(artifact_file_name(fp, 0));
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("write-back artifact {} missing: {e}", path.display()));

    // Byte fixpoint: the written file re-seals to itself.
    let opened = open_salvage(&bytes).expect("write-back artifact opens");
    assert!(opened.quarantined.is_empty(), "write-back sealed damage");
    assert_eq!(opened.artifact.fingerprint(), fp);
    assert_eq!(
        seal(&opened.artifact),
        bytes,
        "write-back artifact is not a seal fixpoint"
    );

    // And it is complete: a warm boot off it does zero translation and
    // matches a cold run bit-for-bit.
    let cold = oracle_run();
    let shared = Arc::new(warm_state(&opened, None, 8, 1));
    let warm = Engine::with_shared(shared, EngineConfig::default())
        .run(&w.pair.guest.program, &w.setup())
        .expect("warm run");
    assert_eq!(warm.server.translate_calls, 0);
    assert_eq!(stripped(&warm.to_json()), stripped(&cold.to_json()));

    let _ = std::fs::remove_dir_all(&dir);
}

/// ART_PUSH obeys the generation order: a fresh offer is adopted (and
/// persisted when an artifact dir is configured), a stale or equal
/// re-offer is refused and counted, and the adopted partition serves
/// its first request translate-free.
#[test]
fn pushed_artifacts_respect_generation_order_and_serve_warm() {
    let w = build(Benchmark::Mcf, Scale::tiny());
    let artifact = pdbt::artifact::compile(
        &w.pair.guest.program,
        None,
        &w.setup(),
        EngineConfig::default(),
        "mcf/tiny",
    )
    .expect("compile");
    let bytes = seal(&artifact);
    let fp = artifact.fingerprint();

    let dir = std::env::temp_dir().join(format!("pdbt-fleet-push-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (addr, handle) = spawn_server(ServeConfig {
        jobs: 1,
        artifact_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });

    // Fresh offer at generation 5: adopted and persisted.
    let verdict = push_artifact(addr, fp, 5, "mcf/tiny", &bytes, T).expect("push");
    assert_eq!(verdict.get("adopted"), Some(&Json::from(true)), "{verdict}");
    assert_eq!(verdict.get("generation").and_then(Json::as_u64), Some(5));
    assert!(
        dir.join(artifact_file_name(fp, 5)).exists(),
        "adopted artifact was not persisted"
    );

    // A stale offer (lower generation) is refused…
    let verdict = push_artifact(addr, fp, 3, "mcf/tiny", &bytes, T).expect("stale push");
    assert_eq!(
        verdict.get("adopted"),
        Some(&Json::from(false)),
        "{verdict}"
    );
    assert_eq!(verdict.get("generation").and_then(Json::as_u64), Some(5));

    // …and so is an equal one (same generation, same section CRCs).
    let verdict = push_artifact(addr, fp, 5, "mcf/tiny", &bytes, T).expect("equal push");
    assert_eq!(
        verdict.get("adopted"),
        Some(&Json::from(false)),
        "{verdict}"
    );

    let pong = ping(addr, T).expect("ping");
    assert_eq!(fleet_field(&pong, "adopted"), 1);
    assert_eq!(fleet_field(&pong, "rejected"), 2);

    // The pushed partition answers its first request translate-free.
    let resp = submit(addr, &mcf_request(1), T).expect("submit");
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed")
    );
    let pong = ping(addr, T).expect("ping");
    assert_eq!(server_field(&pong, "translate_calls"), 0);
    assert_eq!(server_field(&pong, "inserted"), 0);
    assert_eq!(server_field(&pong, "reply_errors"), 0);

    shutdown(addr, T).expect("shutdown");
    assert_eq!(handle.join().unwrap().panicked, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The refresh tick: a follower started against an *empty* leader
/// picks up a partition that appears later, without restarting.
#[test]
fn refresh_tick_picks_up_partitions_that_appear_later() {
    let (leader, leader_h) = spawn_server(ServeConfig {
        jobs: 1,
        ..ServeConfig::default()
    });
    let (follower, follower_h) = spawn_server(ServeConfig {
        jobs: 1,
        peers: vec![leader.to_string()],
        replicate_interval: Some(Duration::from_millis(100)),
        ..ServeConfig::default()
    });

    // Nothing to pull at boot: the leader is empty.
    let pong = ping(follower, T).expect("follower ping");
    assert_eq!(pong.get("images").and_then(Json::as_u64), Some(0));

    // Warm the leader *after* the follower booted.
    let resp = submit(leader, &mcf_request(1), T).expect("leader warm-up");
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed")
    );

    // The jittered tick (50–150 ms at this interval) must replicate it.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let pong = ping(follower, T).expect("follower ping");
        if pong.get("images").and_then(Json::as_u64) == Some(1) {
            assert!(fleet_field(&pong, "pulled") >= 1);
            assert!(fleet_field(&pong, "adopted") >= 1);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "refresh tick never replicated the leader's partition"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    shutdown(follower, T).expect("follower shutdown");
    shutdown(leader, T).expect("leader shutdown");
    assert_eq!(follower_h.join().unwrap().panicked, 0);
    assert_eq!(leader_h.join().unwrap().panicked, 0);
}
