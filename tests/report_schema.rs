//! Golden-file pin of the `--report-json` schema: the sorted set of
//! field paths (in `rules[].label` style) produced by driving the real
//! `pdbt stats` binary must match `tests/golden/report_schema.txt`.
//!
//! The report is the machine-readable interface of the whole tool —
//! downstream dashboards key on exact field names and nesting — so
//! renaming, moving or dropping a field must show up as a reviewed
//! golden diff, not a silent break. Values are deliberately not
//! pinned; only structure is.
//!
//! Refresh after an intentional schema change with
//! `UPDATE_GOLDEN=1 cargo test --test report_schema`.

use pdbt::obs::json::Json;
use std::collections::BTreeSet;
use std::process::Command;

/// A guest that exercises every report section: rule-covered ALU work,
/// an unlearnable (`mul`) to force lookup misses, a flag-delegated
/// loop, and output.
const GUEST: &str = "\
mov r0, #5
mov r1, #0
mov r2, #3
add r1, r1, r0
mul r3, r1, r0
subs r2, r2, #1
bne .-12
mov r0, r1
svc #1
mov r0, r3
svc #1
svc #0
";

fn schema_paths(doc: &Json, path: &str, out: &mut BTreeSet<String>) {
    match doc {
        Json::Obj(map) => {
            for (key, value) in map {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                schema_paths(value, &sub, out);
            }
        }
        Json::Arr(items) => {
            let sub = format!("{path}[]");
            if items.is_empty() {
                out.insert(sub);
            } else {
                for item in items {
                    schema_paths(item, &sub, out);
                }
            }
        }
        _ => {
            out.insert(path.to_string());
        }
    }
}

#[test]
fn report_json_schema_matches_golden() {
    let dir = std::env::temp_dir().join(format!("pdbt-schema-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("prog.s");
    let rules = dir.join("rules.txt");
    let report = dir.join("report.json");
    std::fs::write(&prog, GUEST).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_pdbt"))
        .args(["train", "--scale", "tiny", "-o", rules.to_str().unwrap()])
        .status()
        .expect("pdbt train runs");
    assert!(status.success());

    // `--jobs 2` prewarms through the worker pool, so the pool and
    // per-shard cache sections carry real data.
    let status = Command::new(env!("CARGO_BIN_EXE_pdbt"))
        .args([
            "stats",
            prog.to_str().unwrap(),
            "--rules",
            rules.to_str().unwrap(),
            "--jobs",
            "2",
            "--report-json",
            report.to_str().unwrap(),
        ])
        .status()
        .expect("pdbt stats runs");
    assert!(status.success());

    let text = std::fs::read_to_string(&report).unwrap();
    let doc = Json::parse(&text).expect("report is valid JSON");
    let mut paths = BTreeSet::new();
    schema_paths(&doc, "", &mut paths);
    // The degraded-mode interface must always be present, even in a
    // healthy run: consumers poll `outcome` and the `resilience`
    // counters to tell a complete report from a partial one.
    for required in [
        "outcome",
        "resilience.degraded_blocks",
        "resilience.interpreted_guest",
        "resilience.quarantined_rules",
        "resilience.quarantined_combos",
        "resilience.fuel_exhausted",
        "resilience.injected.symexec",
        "resilience.injected.emit",
        "resilience.injected.store",
        "resilience.injected.pool",
        "resilience.injected.cache",
        // The dispatch hot-path counters: dashboards distinguish a run
        // where chaining/traces never engaged from one where the flags
        // were off by these being present-and-zero vs. absent.
        // The host-backend identity and its compile counters: consumers
        // tell a threaded-code run from a model-interpreter run (and
        // how much one-off compile time it paid) without re-deriving it
        // from flags.
        "dispatch.backend",
        "dispatch.compiled_blocks",
        "dispatch.compile_ns",
        "dispatch.jump_cache_hits",
        "dispatch.jump_cache_misses",
        "dispatch.chain_followed",
        "dispatch.links_resolved",
        "dispatch.traces_formed",
        "dispatch.trace_execs",
        "dispatch.invalidations",
        // The serving-model counters: every report names the shared
        // translation state it ran against, so a `pdbt serve` response
        // and a standalone `pdbt run` expose the same interface (the
        // standalone case is simply a one-session server).
        "server.probes",
        "server.inserted",
        "server.hits",
        "server.translate_calls",
        "server.sessions",
        "server.hit_rate",
        "server.compiled_blocks",
        "server.partitions[].compiled_blocks",
        // The serving-plane telemetry: request-lifecycle latency
        // histograms with interpolated quantiles, the per-partition
        // SLO rollup, and the flight-recorder tail. A standalone run
        // records its own single session, so all three sections carry
        // real data here too.
        "server.latency.request_ns.count",
        "server.latency.request_ns.p50",
        "server.latency.request_ns.p95",
        "server.latency.request_ns.p99",
        "server.latency.queue_ns.count",
        "server.latency.reply_bytes.count",
        "server.partitions[].partition",
        "server.partitions[].sessions",
        "server.partitions[].hit_rate",
        "server.partitions[].latency.count",
        "server.partitions[].latency.p50",
        "server.partitions[].latency.p95",
        "server.partitions[].latency.p99",
        "server.flight[].seq",
        "server.flight[].outcome",
        "server.flight[].partition",
        "server.flight[].phases.queue_ns",
        "server.flight[].phases.translate_ns",
        "server.flight[].phases.execute_ns",
        "server.flight[].phases.reply_ns",
        "server.flight[].phases.total_ns",
        "server.flight[].reply_bytes",
        // The artifact provenance counters: consumers tell a warm
        // (artifact-rehydrated) session from a cold one, and count
        // sections the salvage loader quarantined, without parsing
        // server logs. Present-and-zero on a cold standalone run.
        "server.artifact.warm",
        "server.artifact.loaded_blocks",
        "server.artifact.loaded_traces",
        "server.artifact.loaded_rules",
        "server.artifact.quarantined_sections",
        "server.artifact.trace_hits",
    ] {
        assert!(
            paths.contains(required),
            "report is missing the `{required}` field"
        );
    }
    let got = paths.into_iter().collect::<Vec<_>>().join("\n") + "\n";

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/report_schema.txt"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &got).unwrap();
    }
    let want = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        got, want,
        "report schema changed; review and refresh with UPDATE_GOLDEN=1"
    );

    std::fs::remove_dir_all(&dir).ok();
}
