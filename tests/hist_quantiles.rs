//! Property lockdown of `Histogram::percentile` against a sorted-sample
//! oracle: the interpolated bucket quantile must land in the same
//! bucket as the exact quantile of the recorded samples, stay within
//! one bucket width of it, be monotone in `p`, and respect the
//! recorded extrema. These are the guarantees that make the serving
//! plane's p50/p95/p99 trustworthy as SLO numbers.
//!
//! Hand-rolled seeded fuzz loops over the in-tree PRNG (`pdbt-rng`,
//! aliased as `rand`) — the offline build has no proptest.

use pdbt::obs::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fuzz iterations per distribution shape; FUZZ_CASES scales the file.
fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// The oracle: exact quantile by ceil-rank over the sorted samples.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram bucket index a value lands in (bounds are upper
/// edges; the overflow bucket is `bounds.len()`).
fn bucket_of(bounds: &[u64], v: u64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

/// Upper edge of a bucket, capped at the recorded max for the
/// overflow bucket (matching what `percentile` can return).
fn bucket_hi(bounds: &[u64], idx: usize, max: u64) -> u64 {
    bounds.get(idx).copied().unwrap_or(max)
}

/// Draws one sample set for a shape, checks every quantile law.
fn check_distribution(rng: &mut StdRng, draw: impl Fn(&mut StdRng) -> u64) {
    let n = rng.gen_range(1..400usize);
    let mut h = Histogram::request_ns();
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let v = draw(rng);
        h.record(v);
        samples.push(v);
    }
    samples.sort_unstable();
    let (lo, hi) = (samples[0], samples[n - 1]);

    let bounds = h.bounds();
    let mut prev = 0u64;
    for pct in [1, 5, 10, 25, 50, 75, 90, 95, 99, 100] {
        let p = pct as f64 / 100.0;
        let got = h.percentile(p);
        let want = exact_quantile(&samples, p);

        // Law 1: same bucket as the oracle (values clamp into the
        // recorded [min, max], which only tightens the bucket).
        let want_bucket = bucket_of(bounds, want.clamp(lo, hi));
        let got_bucket = bucket_of(bounds, got);
        assert_eq!(
            got_bucket, want_bucket,
            "p{pct}: got {got} (bucket {got_bucket}), oracle {want} (bucket {want_bucket}), n={n}"
        );

        // Law 2: within one bucket width of the oracle.
        let blo = if want_bucket == 0 {
            0
        } else {
            bounds[want_bucket - 1]
        };
        let bhi = bucket_hi(bounds, want_bucket, hi).max(blo);
        let width = bhi - blo;
        assert!(
            got.abs_diff(want) <= width,
            "p{pct}: |{got} - {want}| exceeds bucket width {width}"
        );

        // Law 3: monotone in p.
        assert!(got >= prev, "p{pct}: {got} < previous quantile {prev}");
        prev = got;

        // Law 4: bounded by the recorded extrema.
        assert!(
            (lo..=hi).contains(&got),
            "p{pct}: {got} outside [{lo},{hi}]"
        );
    }
}

#[test]
fn quantiles_track_a_sorted_sample_oracle_across_distributions() {
    let mut rng = StdRng::seed_from_u64(0x51_0b_a1);
    for _ in 0..cases() {
        // Uniform over the histogram's full dynamic range.
        check_distribution(&mut rng, |r| r.gen_range(1..5_000_000_000u64));
        // Clustered: most traffic in one decade, like a warm server.
        check_distribution(&mut rng, |r| 200_000 + r.gen_range(0..800_000u64));
        // Heavy tail: mostly fast, occasional 1000x outliers.
        check_distribution(&mut rng, |r| {
            if r.gen_bool(0.05) {
                r.gen_range(100_000_000..4_000_000_000u64)
            } else {
                r.gen_range(10_000..1_000_000u64)
            }
        });
        // Degenerate: every sample identical.
        let v = 1 + rng.gen_range(0..3u64) * 77_777;
        check_distribution(&mut rng, move |_| v);
    }
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::queue_wait_ns();
    for p in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.percentile(p), 0);
    }
    assert_eq!(h.p50(), 0);
    assert_eq!(h.p99(), 0);
}
