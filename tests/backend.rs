//! Backend lockdown: the threaded-code executor must be bit-identical
//! to the model interpreter it replaces.
//!
//! Two layers of evidence:
//!
//! * End-to-end: full engine runs over the three differently degraded
//!   training corpora (the same seeds `tests/determinism.rs` locks
//!   down), at `--jobs 1` and `--jobs 4`, under both backends. The
//!   stripped reports must be bit-identical across backends (only
//!   `dispatch.backend`, `dispatch.compiled_blocks` and the wall-clock
//!   `dispatch.compile_ns` may differ) and the per-rule attribution
//!   sums must agree exactly.
//! * Per-block differential fuzz: seeded random host blocks executed
//!   from random CPU states through `exec_block_traced_into` and
//!   `compile_block` + `exec_threaded_into`, comparing the full
//!   architectural outcome — result (exit or error, by `Debug`
//!   equality, which covers error detail strings), registers, flags,
//!   XMM bit patterns, memory, output stream, and per-instruction
//!   retire counts. `FUZZ_CASES` scales the loop (deep-fuzz CI runs
//!   512).

use pdbt::compiler::{degrade, DegradeProfile};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::RuleSet;
use pdbt::obs::json::Json;
use pdbt::runtime::{BackendKind, Engine, EngineConfig, Report};
use pdbt::workloads::{suite, Scale};
use pdbt::x86::builders as hx;
use pdbt::x86::{
    compile_block, exec_block_traced_into, exec_threaded_into, Cc, Cpu, Inst, Mem, Operand, Reg,
    Xmm,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The determinism lockdown's three degraded corpora.
const SEEDS: [u64; 3] = [0xDE7_001, 0xDE7_002, 0xDE7_003];

/// Honour FUZZ_CASES when set; default to a CI-friendly 64.
fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A learned rule set over the tiny suite with seed-specific extra
/// debug-map degradation (identical to `tests/determinism.rs`).
fn learned_for(seed: u64) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = DegradeProfile {
        drop: 0.15,
        merge: 0.08,
        skew: 0.05,
    };
    let mut learned = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        let debug = degrade(&w.debug, profile, &mut rng);
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &debug, LearnConfig::default());
        learned.merge(r);
    }
    learned
}

fn run_with(rules: &RuleSet, jobs: usize, backend: BackendKind) -> Report {
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    let cfg = EngineConfig {
        jobs,
        backend,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(Some(rules.clone()), cfg);
    engine.run(&w.pair.guest.program, &w.setup()).expect("run")
}

/// The report JSON stripped for a cross-backend comparison: the usual
/// determinism strips (`server`, wall-clock `histograms.translate_ns`
/// and `dispatch.compile_ns`) plus the two fields that *name* the
/// backend — `dispatch.backend` and `dispatch.compiled_blocks` (always
/// zero under the model). Everything else must be bit-identical.
fn stripped_cross_backend(report: &Report) -> String {
    let mut doc = report.to_json();
    if let Json::Obj(top) = &mut doc {
        top.remove("server");
        // Work-stealing task distribution is scheduling noise under
        // `--jobs 4` (same strip as tests/artifact.rs).
        top.remove("pool");
        if let Some(Json::Obj(hists)) = top.get_mut("histograms") {
            hists.remove("translate_ns");
        }
        if let Some(Json::Obj(dispatch)) = top.get_mut("dispatch") {
            dispatch.remove("backend");
            dispatch.remove("compiled_blocks");
            dispatch.remove("compile_ns");
        }
    }
    doc.to_string()
}

/// Full engine runs agree between backends on every degraded corpus,
/// serial and parallel.
#[test]
fn backends_agree_end_to_end_across_corpora_and_jobs() {
    for seed in SEEDS {
        let rules = learned_for(seed);
        for jobs in [1usize, 4] {
            let model = run_with(&rules, jobs, BackendKind::Model);
            let threaded = run_with(&rules, jobs, BackendKind::Threaded);
            assert_eq!(
                model.output, threaded.output,
                "seed {seed:#x} jobs {jobs}: guest output diverged"
            );
            assert_eq!(
                stripped_cross_backend(&model),
                stripped_cross_backend(&threaded),
                "seed {seed:#x} jobs {jobs}: stripped reports diverged"
            );
            // Per-rule attribution sums, asserted directly on top of
            // the JSON identity: coverage is the paper's headline
            // number, so it gets its own check.
            assert_eq!(
                model.obs.rules.coverage_by_subgroup(),
                threaded.obs.rules.coverage_by_subgroup(),
                "seed {seed:#x} jobs {jobs}: attribution sums diverged"
            );
            assert_eq!(model.backend, "model");
            assert_eq!(threaded.backend, "threaded");
            assert_eq!(model.obs.dispatch.compiled_blocks, 0);
            assert!(
                threaded.obs.dispatch.compiled_blocks > 0,
                "seed {seed:#x} jobs {jobs}: vacuous — nothing compiled"
            );
        }
    }
}

/// Compiled-block accounting is deterministic: `compiled_blocks` equals
/// distinct blocks executed, independent of the prewarm worker count.
#[test]
fn compiled_block_counts_are_jobs_invariant() {
    let rules = learned_for(SEEDS[0]);
    let serial = run_with(&rules, 1, BackendKind::Threaded);
    let parallel = run_with(&rules, 4, BackendKind::Threaded);
    assert!(serial.obs.dispatch.compiled_blocks > 0);
    assert_eq!(
        serial.obs.dispatch.compiled_blocks,
        parallel.obs.dispatch.compiled_blocks
    );
}

// ---------------------------------------------------------------------
// Per-block differential fuzz.
// ---------------------------------------------------------------------

const DATA_BASE: u32 = 0x1000;
const DATA_SIZE: u32 = 0x1000;
const STACK_BASE: u32 = 0x8000;
const STACK_SIZE: u32 = 0x1000;

fn rnd_reg(rng: &mut StdRng) -> Reg {
    Reg::ALL[rng.gen_range(0..Reg::ALL.len())]
}

fn rnd_cc(rng: &mut StdRng) -> Cc {
    Cc::ALL[rng.gen_range(0..Cc::ALL.len())]
}

/// A memory operand that usually lands in the mapped data region
/// (Ebp-relative) but sometimes goes absolute or indexed — including
/// occasionally out of bounds, so fault paths are compared too.
fn rnd_mem(rng: &mut StdRng) -> Mem {
    match rng.gen_range(0..6) {
        0 | 1 => Mem::base(Reg::Ebp),
        2 | 3 => Mem::base_disp(Reg::Ebp, rng.gen_range(-16i32..0x200)),
        4 => Mem::base_index(Reg::Ebp, rnd_reg(rng)),
        _ => Mem::abs(rng.gen_range(0i32..0x2_0000)),
    }
}

fn rnd_src(rng: &mut StdRng) -> Operand {
    match rng.gen_range(0..4) {
        0 => Operand::Reg(rnd_reg(rng)),
        1 => Operand::Imm(rng.gen_range(-64i32..64)),
        2 => Operand::Imm(rng.gen::<u32>() as i32),
        _ => Operand::Mem(rnd_mem(rng)),
    }
}

fn rnd_rm(rng: &mut StdRng) -> Operand {
    if rng.gen_range(0..3) == 0 {
        Operand::Mem(rnd_mem(rng))
    } else {
        Operand::Reg(rnd_reg(rng))
    }
}

/// Dst/src pair honouring the not-both-mem shape rule.
fn rnd_ds(rng: &mut StdRng) -> (Operand, Operand) {
    let dst = rnd_rm(rng);
    let src = if dst.as_mem().is_some() {
        match rng.gen_range(0..2) {
            0 => Operand::Reg(rnd_reg(rng)),
            _ => Operand::Imm(rng.gen_range(-64i32..64)),
        }
    } else {
        rnd_src(rng)
    };
    (dst, src)
}

fn rnd_inst(rng: &mut StdRng, len: usize) -> Inst {
    match rng.gen_range(0..16) {
        0 => {
            let (d, s) = rnd_ds(rng);
            hx::mov(d, s)
        }
        1 => {
            let (d, s) = rnd_ds(rng);
            match rng.gen_range(0..6) {
                0 => hx::add(d, s),
                1 => hx::adc(d, s),
                2 => hx::sub(d, s),
                3 => hx::sbb(d, s),
                4 => hx::cmp(d, s),
                _ => hx::imul(d, s),
            }
        }
        2 => {
            let (d, s) = rnd_ds(rng);
            match rng.gen_range(0..4) {
                0 => hx::and(d, s),
                1 => hx::or(d, s),
                2 => hx::xor(d, s),
                _ => hx::test(d, s),
            }
        }
        3 => {
            let d = rnd_rm(rng);
            // Shift counts beyond 31 exercise the masking path.
            let s = if rng.gen_range(0..2) == 0 {
                Operand::Imm(rng.gen_range(0i32..40))
            } else {
                Operand::Reg(rnd_reg(rng))
            };
            match rng.gen_range(0..4) {
                0 => hx::shl(d, s),
                1 => hx::shr(d, s),
                2 => hx::sar(d, s),
                _ => hx::ror(d, s),
            }
        }
        4 => {
            let d = rnd_rm(rng);
            if rng.gen_range(0..2) == 0 {
                hx::not(d)
            } else {
                hx::neg(d)
            }
        }
        5 => hx::mul_wide(rnd_rm(rng)),
        6 => {
            if rng.gen_range(0..2) == 0 {
                hx::push(rnd_src(rng))
            } else {
                hx::pop(rnd_rm(rng))
            }
        }
        7 => {
            let m = Operand::Mem(rnd_mem(rng));
            let r = Operand::Reg(rnd_reg(rng));
            match rng.gen_range(0..4) {
                0 => hx::movb(m, r),
                1 => hx::movw(m, r),
                2 => hx::movzxb(r, m),
                _ => hx::movzxw(r, m),
            }
        }
        8 => hx::lea(Operand::Reg(rnd_reg(rng)), Operand::Mem(rnd_mem(rng))),
        9 => hx::bsr(Operand::Reg(rnd_reg(rng)), rnd_rm(rng)),
        10 => hx::setcc(rnd_cc(rng), rnd_rm(rng)),
        11 => {
            // Mostly in-block targets; the occasional wild one compares
            // the BadPc path.
            let d = rng.gen_range(-(len as i32 + 2)..len as i32 + 2);
            hx::jcc(rnd_cc(rng), d)
        }
        12 => {
            let x = Xmm::new(rng.gen_range(0u8..8));
            match rng.gen_range(0..3) {
                0 => hx::movss(x.into(), rnd_xmm_src(rng)),
                1 => hx::movss(
                    Operand::Mem(rnd_mem(rng)),
                    Xmm::new(rng.gen_range(0u8..8)).into(),
                ),
                _ => hx::movss(x.into(), Operand::Mem(rnd_mem(rng))),
            }
        }
        13 => {
            let x = Xmm::new(rng.gen_range(0u8..8));
            let s = rnd_xmm_src(rng);
            match rng.gen_range(0..5) {
                0 => hx::addss(x, s),
                1 => hx::subss(x, s),
                2 => hx::mulss(x, s),
                3 => hx::divss(x, s),
                _ => hx::ucomiss(x, s),
            }
        }
        14 => hx::out(),
        _ => {
            let (d, s) = rnd_ds(rng);
            hx::mov(d, s)
        }
    }
}

fn rnd_xmm_src(rng: &mut StdRng) -> Operand {
    if rng.gen_range(0..2) == 0 {
        Xmm::new(rng.gen_range(0u8..8)).into()
    } else {
        Operand::Mem(rnd_mem(rng))
    }
}

fn rnd_block(rng: &mut StdRng) -> Vec<Inst> {
    let len = rng.gen_range(1usize..14);
    let mut code: Vec<Inst> = (0..len).map(|_| rnd_inst(rng, len)).collect();
    match rng.gen_range(0..4) {
        0 => code.push(hx::hlt()),
        1 => code.push(hx::jmp_exit(Operand::Imm(rng.gen_range(0i32..0x4000)))),
        2 => code.push(hx::jmp_rel(rng.gen_range(-(len as i32)..3))),
        _ => {} // fall off the end
    }
    code
}

fn rnd_cpu(rng: &mut StdRng) -> Cpu {
    let mut cpu = Cpu::new();
    cpu.mem.map(DATA_BASE, DATA_SIZE);
    cpu.mem.map(STACK_BASE, STACK_SIZE);
    for r in Reg::ALL {
        let v = match rng.gen_range(0..3) {
            0 => rng.gen_range(0u32..0x80),
            1 => DATA_BASE + rng.gen_range(0u32..DATA_SIZE),
            _ => rng.gen::<u32>(),
        };
        cpu.write(r, v);
    }
    // Ebp anchors the common data-region operands; Esp starts inside
    // the stack so short push/pop runs stay mapped.
    cpu.write(Reg::Ebp, DATA_BASE + rng.gen_range(0u32..0x800));
    cpu.write(
        Reg::Esp,
        STACK_BASE + 0x800 + rng.gen_range(0u32..0x100) * 4,
    );
    for i in 0..8 {
        cpu.xmm[i] = f32::from_bits(rng.gen::<u32>());
    }
    for a in (DATA_BASE..DATA_BASE + 0x200).step_by(4) {
        cpu.mem.store32(a, rng.gen::<u32>()).unwrap();
    }
    cpu.flags.n = rng.gen_range(0..2) == 0;
    cpu.flags.z = rng.gen_range(0..2) == 0;
    cpu.flags.c = rng.gen_range(0..2) == 0;
    cpu.flags.v = rng.gen_range(0..2) == 0;
    cpu
}

/// Seeded differential fuzz: random blocks from random states must
/// leave both executors in bit-identical architectural states — on
/// success *and* on every fault path.
#[test]
fn fuzz_threaded_matches_model_per_block() {
    let mut rng = StdRng::seed_from_u64(0xBAC_CE4D);
    let mut faulted = 0u64;
    for case in 0..fuzz_cases() {
        let code = rnd_block(&mut rng);
        let budget = if rng.gen_range(0..4) == 0 {
            rng.gen_range(1u64..24)
        } else {
            4096
        };
        let mut cpu_m = rnd_cpu(&mut rng);
        let mut cpu_t = cpu_m.clone();
        let mut counts_m = Vec::new();
        let mut counts_t = Vec::new();
        let res_m = exec_block_traced_into(&mut cpu_m, &code, budget, &mut counts_m);
        let compiled = compile_block(&code);
        assert_eq!(compiled.len(), code.len(), "case {case}: op count diverged");
        let res_t = exec_threaded_into(&mut cpu_t, &compiled, budget, &mut counts_t);
        let ctx = format!("case {case}: {code:?}");
        if res_m.is_err() {
            faulted += 1;
        }
        assert_eq!(
            format!("{res_m:?}"),
            format!("{res_t:?}"),
            "{ctx}: results diverged"
        );
        assert_eq!(counts_m, counts_t, "{ctx}: retire counts diverged");
        assert_eq!(cpu_m.regs, cpu_t.regs, "{ctx}: registers diverged");
        assert_eq!(cpu_m.flags, cpu_t.flags, "{ctx}: flags diverged");
        assert_eq!(cpu_m.output, cpu_t.output, "{ctx}: output diverged");
        let bits_m: Vec<u32> = cpu_m.xmm.iter().map(|f| f.to_bits()).collect();
        let bits_t: Vec<u32> = cpu_t.xmm.iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits_m, bits_t, "{ctx}: xmm bits diverged");
        assert_eq!(
            cpu_m.mem.read_bytes(DATA_BASE, DATA_SIZE).unwrap(),
            cpu_t.mem.read_bytes(DATA_BASE, DATA_SIZE).unwrap(),
            "{ctx}: data memory diverged"
        );
        assert_eq!(
            cpu_m.mem.read_bytes(STACK_BASE, STACK_SIZE).unwrap(),
            cpu_t.mem.read_bytes(STACK_BASE, STACK_SIZE).unwrap(),
            "{ctx}: stack memory diverged"
        );
    }
    // The generator must actually exercise fault paths, or the error
    // comparisons above are vacuous.
    assert!(faulted > 0, "no fuzz case faulted — tighten the generator");
}
