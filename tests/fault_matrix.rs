//! The fault matrix: every injection site × several seeds, end to end.
//!
//! For each fault class the full pipeline (learn → derive → store
//! round-trip → run) must *complete* — no panics, no hard errors — the
//! guest's observable output must still equal the pure reference
//! interpreter's, and the matching resilience counter must be nonzero
//! (proving the fault actually fired and was degraded, not dodged).
//!
//! The fault plan is process-global, so every test in this file takes
//! the `PLAN` lock before configuring one.

#![cfg(feature = "faults")]

use pdbt::core::derive::{derive_jobs, DeriveConfig};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::{load_rules_salvage, save_rules, RuleSet};
use pdbt::runtime::{Engine, EngineConfig, Outcome};
use pdbt::workloads::{run_reference, suite, Scale, Workload};
use pdbt_faults::{Plan, Site};
use pdbt_symexec::CheckOptions;
use std::sync::Mutex;

static PLAN: Mutex<()> = Mutex::new(());

const SEEDS: [u64; 3] = [0xFA_01, 0xFA_02, 0xFA_03];

/// Per-site rates, sized to the site's traffic: the derivation sites
/// see thousands of decisions (a low rate still fires plenty), the
/// store sees one per rule block, and `cache` is driven at 1.0 so the
/// whole run exercises the interpreter fallback deterministically.
fn rate_for(site: Site) -> f64 {
    match site {
        Site::Symexec | Site::Emit | Site::Pool => 0.05,
        Site::Store => 0.5,
        Site::Cache => 1.0,
    }
}

fn learn_tiny() -> RuleSet {
    let mut rules = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &w.debug, LearnConfig::default());
        rules.merge(r);
    }
    rules
}

/// Runs `workload` under the DBT with `rules`, folding `quarantined`
/// into the engine's resilience counters.
fn run_workload(
    w: &Workload,
    rules: RuleSet,
    quarantined_rules: u64,
    quarantined_combos: u64,
) -> pdbt::runtime::Report {
    let mut engine = Engine::new(Some(rules), EngineConfig::default());
    engine.resilience_mut().quarantined_rules = quarantined_rules;
    engine.resilience_mut().quarantined_combos = quarantined_combos;
    engine
        .run(&w.pair.guest.program, &w.setup())
        .expect("setup never fails")
}

/// Silences the panic hook for the duration of `f` — the `pool` site
/// injects worker panics by design, and their backtraces would drown
/// the test output.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(hook);
    r
}

#[test]
fn every_fault_site_degrades_instead_of_aborting() {
    let _guard = PLAN.lock().unwrap();
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    let golden = run_reference(w).expect("reference runs");
    let learned = learn_tiny();
    // The derivation pipeline is untouched by store/cache faults, so
    // one clean derive serves all their cases.
    let (clean, _) = derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 4);
    let clean_text = save_rules(&clean);

    quiet_panics(|| {
        for site in Site::ALL {
            for seed in SEEDS {
                pdbt_faults::configure(Some(Plan::single(site, seed, rate_for(site))));
                let (text, quarantined_combos) = match site {
                    Site::Symexec | Site::Emit | Site::Pool => {
                        let (rules, stats) =
                            derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 4);
                        if site != Site::Symexec {
                            assert!(
                                stats.quarantined > 0,
                                "{site}/{seed:#x}: no candidates quarantined"
                            );
                        }
                        (save_rules(&rules), stats.quarantined as u64)
                    }
                    Site::Store | Site::Cache => (clean_text.clone(), 0),
                };
                let (salvaged, quarantined) = load_rules_salvage(&text);
                if site == Site::Store {
                    assert!(
                        !quarantined.is_empty(),
                        "{site}/{seed:#x}: no store entries quarantined"
                    );
                } else {
                    assert!(
                        quarantined.is_empty(),
                        "{site}/{seed:#x}: unexpected quarantines: {quarantined:?}"
                    );
                }
                let report =
                    run_workload(w, salvaged, quarantined.len() as u64, quarantined_combos);
                assert_eq!(
                    report.outcome,
                    Outcome::Completed,
                    "{site}/{seed:#x}: pipeline did not complete"
                );
                assert_eq!(
                    report.output, golden,
                    "{site}/{seed:#x}: degraded run diverged from the reference interpreter"
                );
                assert!(
                    report.resilience.injected[site.index()] > 0,
                    "{site}/{seed:#x}: the plan never fired"
                );
                match site {
                    Site::Cache => assert!(
                        report.resilience.degraded_blocks > 0,
                        "{site}/{seed:#x}: no block was interpreted"
                    ),
                    Site::Store => assert!(
                        report.resilience.quarantined_rules > 0,
                        "{site}/{seed:#x}: quarantine not surfaced in the report"
                    ),
                    Site::Emit | Site::Pool => assert!(
                        report.resilience.quarantined_combos > 0,
                        "{site}/{seed:#x}: quarantine not surfaced in the report"
                    ),
                    Site::Symexec => {}
                }
                pdbt_faults::configure(None);
            }
        }
    });
}

/// All sites at once, at a rate that leaves translated and interpreted
/// blocks interleaved: the mixed pipeline must still match the
/// reference.
#[test]
fn mixed_fault_run_still_matches_reference() {
    let _guard = PLAN.lock().unwrap();
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    let golden = run_reference(w).expect("reference runs");
    let learned = learn_tiny();
    quiet_panics(|| {
        for seed in SEEDS {
            pdbt_faults::configure(Some(Plan::all_sites(seed, 0.3)));
            let (rules, _) =
                derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 4);
            let (salvaged, quarantined) = load_rules_salvage(&save_rules(&rules));
            let report = run_workload(w, salvaged, quarantined.len() as u64, 0);
            assert_eq!(report.outcome, Outcome::Completed, "seed {seed:#x}");
            assert_eq!(report.output, golden, "seed {seed:#x}: output diverged");
            pdbt_faults::configure(None);
        }
    });
}

/// Cache faults interleaved with the chained dispatch fast path: a pc
/// that degrades to the interpreter must be poisoned out of the jump
/// cache, de-chained from every predecessor, and evicted from any
/// superblock containing it — and the run must still complete with the
/// reference output. The unchained engine under the *same* plan retires
/// the same guest instruction count: injection is keyed purely by pc,
/// so the extra probe calls the fast path makes cannot shift decisions.
#[test]
fn poisoned_block_breaks_its_chain_and_the_run_completes() {
    let _guard = PLAN.lock().unwrap();
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    let golden = run_reference(w).expect("reference runs");
    let learned = learn_tiny();
    let (clean, _) = derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 4);
    // 0.3 leaves translated and interpreted blocks interleaved, so
    // chains form around the poisoned pcs instead of vanishing wholesale.
    let plan = |seed| Plan::single(Site::Cache, seed, 0.3);
    let chained_cfg = EngineConfig {
        trace_threshold: 2,
        ..EngineConfig::default()
    };
    let unchained_cfg = EngineConfig {
        chaining: false,
        traces: false,
        ..EngineConfig::default()
    };
    quiet_panics(|| {
        for seed in SEEDS {
            pdbt_faults::configure(Some(plan(seed)));
            let mut engine = Engine::new(Some(clean.clone()), chained_cfg);
            let report = engine
                .run(&w.pair.guest.program, &w.setup())
                .expect("setup never fails");
            assert_eq!(
                report.outcome,
                Outcome::Completed,
                "seed {seed:#x}: chained run did not complete"
            );
            assert_eq!(
                report.output, golden,
                "seed {seed:#x}: chained degraded run diverged from the reference"
            );
            assert!(
                report.resilience.degraded_blocks > 0,
                "seed {seed:#x}: no block degraded — test is vacuous"
            );
            assert!(
                report.obs.dispatch.invalidations > 0,
                "seed {seed:#x}: degradation never invalidated the jump cache"
            );
            assert!(
                report.obs.dispatch.chain_followed > 0,
                "seed {seed:#x}: no chain survived around the poisoned blocks"
            );
            // Same plan, dispatch fast path off: pc-keyed injection makes
            // the same per-block decisions, so retirement is identical.
            pdbt_faults::configure(Some(plan(seed)));
            let mut engine = Engine::new(Some(clean.clone()), unchained_cfg);
            let unchained = engine
                .run(&w.pair.guest.program, &w.setup())
                .expect("setup never fails");
            assert_eq!(unchained.output, golden, "seed {seed:#x}");
            assert_eq!(
                report.metrics.guest_retired, unchained.metrics.guest_retired,
                "seed {seed:#x}: chaining changed retirement under faults"
            );
            pdbt_faults::configure(None);
        }
    });
}

/// Serial and parallel derivation must stay bit-identical even while
/// workers are being panicked and candidates quarantined: injection is
/// keyed by candidate identity, never by scheduling.
#[test]
fn quarantined_derivation_is_bit_identical_serial_and_parallel() {
    let _guard = PLAN.lock().unwrap();
    let learned = learn_tiny();
    let derive_plan = |seed| Plan {
        seed,
        rate: 0.05,
        sites: (1 << Site::Pool.index()) | (1 << Site::Emit.index()),
    };
    quiet_panics(|| {
        for seed in SEEDS {
            pdbt_faults::configure(Some(derive_plan(seed)));
            let (serial, serial_stats) =
                derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 1);
            // Reconfigure to reset the injection counters; the decision
            // function itself is stateless, so the parallel pass sees
            // the identical plan.
            pdbt_faults::configure(Some(derive_plan(seed)));
            let (parallel, parallel_stats) =
                derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 8);
            assert_eq!(
                serial_stats, parallel_stats,
                "seed {seed:#x}: stats diverged"
            );
            assert!(
                serial_stats.quarantined > 0,
                "seed {seed:#x}: nothing quarantined — test is vacuous"
            );
            assert_eq!(
                save_rules(&serial),
                save_rules(&parallel),
                "seed {seed:#x}: rule sets diverged"
            );
            pdbt_faults::configure(None);
        }
    });
}
