//! Determinism lockdown for the parallel pipeline: `derive_jobs` must
//! be bit-identical to serial derivation, and an engine fed either rule
//! set must produce identical machine-readable reports.
//!
//! Three differently degraded training corpora guard against "it only
//! happened to agree on one input": each seed re-degrades the suite's
//! debug maps, so the learned sets — and therefore the candidate
//! universes the worker pool fans over — differ per seed.
//!
//! The engine configuration is held fixed across the comparison (only
//! the *derive* worker count varies): pool and cache counters are part
//! of the report and legitimately differ between engine `jobs` values.
//! The one wall-clock field, `histograms.translate_ns`, is stripped
//! before comparing.

use pdbt::compiler::{degrade, DegradeProfile};
use pdbt::core::derive::{derive_jobs, DeriveConfig};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::{save_rules, RuleSet};
use pdbt::obs::json::Json;
use pdbt::runtime::{Engine, EngineConfig, Report};
use pdbt::workloads::{suite, Scale};
use pdbt_symexec::CheckOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: [u64; 3] = [0xDE7_001, 0xDE7_002, 0xDE7_003];

/// A learned rule set over the tiny suite with seed-specific extra
/// debug-map degradation, so each seed trains on a distinct corpus.
fn learned_for(seed: u64) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = DegradeProfile {
        drop: 0.15,
        merge: 0.08,
        skew: 0.05,
    };
    let mut learned = RuleSet::new();
    for w in &suite(Scale::tiny()) {
        let debug = degrade(&w.debug, profile, &mut rng);
        let mut r = RuleSet::new();
        learn_into(&mut r, &w.pair, &debug, LearnConfig::default());
        learned.merge(r);
    }
    learned
}

/// A fixed-configuration engine run over one of the suite's workloads.
fn run_fixed(rules: &RuleSet) -> Report {
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    let mut engine = Engine::new(Some(rules.clone()), EngineConfig::default());
    engine.run(&w.pair.guest.program, &w.setup()).expect("run")
}

/// The report JSON with the wall-clock histogram and the
/// server-lifetime counters removed: `translate_ns` is the one clock
/// field, and the `server` section describes the shared state a
/// session ran against (sessions, warm hits), which legitimately
/// differs between a cold standalone run and a warm shared session.
/// Everything else — metrics, attribution, dispatch, resilience — must
/// be bit-identical.
fn comparable_json(report: &Report) -> String {
    let mut doc = report.to_json();
    if let Json::Obj(top) = &mut doc {
        top.remove("server");
        if let Some(Json::Obj(hists)) = top.get_mut("histograms") {
            hists.remove("translate_ns");
        }
        if let Some(Json::Obj(dispatch)) = top.get_mut("dispatch") {
            dispatch.remove("compile_ns");
        }
    }
    doc.to_string()
}

#[test]
fn parallel_derive_is_bit_identical_to_serial() {
    for seed in SEEDS {
        let learned = learned_for(seed);
        let (serial, serial_stats) =
            derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 1);
        let (parallel, parallel_stats) =
            derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 8);
        assert_eq!(
            serial_stats, parallel_stats,
            "seed {seed:#x}: derive stats diverged"
        );
        assert_eq!(
            save_rules(&serial),
            save_rules(&parallel),
            "seed {seed:#x}: serialized rule sets diverged"
        );
    }
}

/// Degraded derivation must stay deterministic too: with a starvation
/// fuel budget, some verifications exhaust and their candidates are
/// rejected — identically whether the pool runs 1 worker or 8.
#[test]
fn fuel_exhausted_derivation_is_bit_identical_to_serial() {
    let opts = CheckOptions {
        fuel: 60,
        ..CheckOptions::default()
    };
    for seed in SEEDS {
        let learned = learned_for(seed);
        let (serial, serial_stats) = derive_jobs(&learned, DeriveConfig::full(), opts, 1);
        let (parallel, parallel_stats) = derive_jobs(&learned, DeriveConfig::full(), opts, 8);
        assert_eq!(
            serial_stats, parallel_stats,
            "seed {seed:#x}: degraded derive stats diverged"
        );
        assert!(
            serial_stats.fuel_exhausted > 0,
            "seed {seed:#x}: the starvation budget exhausted nothing — test is vacuous"
        );
        assert_eq!(
            save_rules(&serial),
            save_rules(&parallel),
            "seed {seed:#x}: degraded rule sets diverged"
        );
    }
}

/// Shared-cache determinism: N sessions borrowing one
/// `SharedTranslationState` — run *concurrently*, racing on the warm
/// cache — produce stripped reports bit-identical to N sequential cold
/// single-engine runs, and the state's server-lifetime counters add up
/// to exactly the sequential sum: every session probes each block once,
/// the block is inserted once server-wide, and the remaining
/// `N·blocks − blocks` probes are warm hits. Repeated per degraded
/// corpus so the sharing machinery is exercised over three distinct
/// rule sets, not one lucky input.
#[test]
fn concurrent_shared_sessions_match_sequential_cold_runs() {
    use pdbt::runtime::SharedTranslationState;
    use std::sync::Arc;

    const SESSIONS: usize = 4;
    let workloads = suite(Scale::tiny());
    let w = &workloads[0];
    for seed in SEEDS {
        let learned = learned_for(seed);
        let cold: Vec<Report> = (0..SESSIONS)
            .map(|_| {
                let mut e = Engine::new(Some(learned.clone()), EngineConfig::default());
                e.run(&w.pair.guest.program, &w.setup()).expect("cold run")
            })
            .collect();

        let shared = Arc::new(SharedTranslationState::new(
            Some(learned.clone()),
            EngineConfig::default().cache_shards,
        ));
        let concurrent: Vec<Report> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    s.spawn(move || {
                        let mut e = Engine::with_shared(shared, EngineConfig::default());
                        e.run(&w.pair.guest.program, &w.setup())
                            .expect("shared run")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("session thread"))
                .collect()
        });

        for (i, r) in concurrent.iter().enumerate() {
            assert_eq!(
                r.output, cold[i].output,
                "seed {seed:#x}: session {i} output diverged"
            );
            assert_eq!(
                comparable_json(r),
                comparable_json(&cold[i]),
                "seed {seed:#x}: session {i} report diverged from its cold run"
            );
        }

        let blocks = cold[0].metrics.blocks_translated;
        assert!(blocks > 0, "seed {seed:#x}: vacuous — nothing translated");
        let snap = shared.server().snapshot();
        let n = SESSIONS as u64;
        assert_eq!(snap.sessions, n, "seed {seed:#x}");
        assert_eq!(
            snap.inserted, blocks,
            "seed {seed:#x}: every block inserted exactly once server-wide"
        );
        assert_eq!(
            snap.probes,
            blocks * n,
            "seed {seed:#x}: each session probes each block once"
        );
        assert_eq!(
            snap.hits,
            blocks * (n - 1),
            "seed {seed:#x}: warm hits must equal the sequential sum"
        );
    }
}

#[test]
fn reports_from_parallel_and_serial_rules_are_identical() {
    for seed in SEEDS {
        let learned = learned_for(seed);
        let (serial, _) = derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 1);
        let (parallel, _) = derive_jobs(&learned, DeriveConfig::full(), CheckOptions::default(), 8);
        let a = run_fixed(&serial);
        let b = run_fixed(&parallel);
        assert_eq!(a.output, b.output, "seed {seed:#x}: guest output diverged");
        assert_eq!(
            comparable_json(&a),
            comparable_json(&b),
            "seed {seed:#x}: run reports diverged"
        );
    }
}
