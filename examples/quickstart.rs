//! Quickstart: assemble a small guest program from text, run it under
//! the QEMU-path DBT and under the parameterized DBT, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pdbt::arm::{parse_listing, Program};
use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::runtime::{Engine, EngineConfig, RunSetup};
use pdbt::workloads::{train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;

fn main() {
    // A guest program in assembly: sum of squares 1..=100.
    let listing = "
        mov r4, #100        ; n
        mov r5, #0          ; acc
        mul r6, r4, r4      ; loop: n^2 (mul is QEMU-path: unlearnable family)
        add r5, r5, r6      ;   acc += n^2
        subs r4, r4, #1     ;   n -= 1  (fused flags)
        bne .-12            ;   until n == 0
        mov r0, r5
        svc #1              ; emit acc
        svc #0              ; exit
    ";
    let program = Program::new(0x1000, parse_listing(listing).expect("assembles"));
    println!("guest program:\n{}", program.disassemble());

    let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);

    // Baseline: pure lift/lower through the TCG-like IR.
    let mut qemu = Engine::new(None, EngineConfig::default());
    let q = qemu.run(&program, &setup).expect("qemu run");
    println!("qemu-path : output {:?}", q.output);
    println!(
        "            {:.2} host instrs/guest instr, coverage {:.0}%",
        q.metrics.total_ratio(),
        q.metrics.coverage() * 100.0
    );

    // Parameterized: rules learned from the synthetic suite (leave-one-
    // out style) and expanded along the opcode/addressing-mode
    // dimensions with condition-flag delegation.
    let suite = pdbt::workloads::suite(Scale::tiny());
    let learned = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
    let (rules, stats) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
    println!(
        "\nrules: {} learned -> {} applicable after parameterization",
        stats.learned, stats.instantiated
    );
    let mut para = Engine::new(Some(rules), EngineConfig::default());
    let p = para.run(&program, &setup).expect("para run");
    assert_eq!(p.output, q.output, "both translators agree");
    println!("para      : output {:?}", p.output);
    println!(
        "            {:.2} host instrs/guest instr, coverage {:.1}%",
        p.metrics.total_ratio(),
        p.metrics.coverage() * 100.0
    );
    println!(
        "\nspeedup (executed-host-instruction proxy): {:.2}x",
        q.metrics.host_executed() as f64 / p.metrics.host_executed() as f64
    );
}
