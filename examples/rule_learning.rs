//! The learning + parameterization pipeline, step by step (paper
//! Figs 1, 3, 5): compile one source program for both ISAs, extract and
//! verify rule candidates, then derive rules for opcodes and addressing
//! modes that were never in the training set.
//!
//! ```sh
//! cargo run --release --example rule_learning
//! ```

use pdbt::compiler::lang::*;
use pdbt::compiler::{build_debug_map, compile_pair};
use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::{learn_into, LearnConfig};
use pdbt::core::{parameterize, RuleSet};
use pdbt::isa::Width;
use pdbt_isa_arm::{builders as g, Operand as O, Reg};
use pdbt_symexec::CheckOptions;

fn main() {
    // 1. A tiny "training program" — note it only ever uses `add`.
    let src = SourceProgram {
        functions: vec![Function {
            name: "train".into(),
            stmts: vec![
                Stmt::Un {
                    dst: Var(0),
                    op: UnOp::Mov,
                    a: Rvalue::Const(0x100),
                },
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Shl,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(12),
                },
                Stmt::Bin {
                    dst: Var(2),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(2)),
                    b: Rvalue::Var(Var(3)),
                },
                Stmt::Bin {
                    dst: Var(3),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(2)),
                    b: Rvalue::Const(7),
                },
                Stmt::Load {
                    dst: Var(2),
                    base: Var(0),
                    offset: 8,
                    width: Width::B32,
                },
                Stmt::Store {
                    src: Var(3),
                    base: Var(0),
                    offset: 12,
                    width: Width::B32,
                },
                Stmt::Return,
            ],
            n_vars: 4,
        }],
    };
    let pair = compile_pair(&src, 0x1000).expect("compiles");
    println!("guest binary:\n{}", pair.guest.program.disassemble());

    // 2. Learn: pair per-statement sequences via the debug map, verify
    //    with symbolic execution, merge.
    let debug = build_debug_map(&pair.guest, &pair.host);
    let mut rules = RuleSet::new();
    let stats = learn_into(&mut rules, &pair, &debug, LearnConfig::default());
    println!(
        "learning funnel: {} statements -> {} candidates -> {} learned -> {} unique",
        stats.statements, stats.candidates, stats.learned, stats.unique
    );
    for (key, entry) in rules.iter() {
        let tmpl: Vec<String> = entry.template.iter().map(|t| t.to_string()).collect();
        println!("  learned rule  {key}   =>   {}", tmpl.join("; "));
    }

    // 3. Parameterize (paper Fig 3): the add rules derive eor/sub/orr/…
    //    rules for opcodes never seen in training.
    let (full, dstats) = derive(&rules, DeriveConfig::full(), CheckOptions::default());
    println!(
        "\nparameterization: {} learned -> {} applicable ({} derived, {} rejected by verification)",
        dstats.learned, dstats.instantiated, dstats.derived, dstats.rejected
    );

    for inst in [
        g::eor(Reg::R9, Reg::R9, O::Reg(Reg::R10)), // opcode dimension
        g::sub(Reg::R4, Reg::R5, O::Imm(3)),        // opcode + addressing mode
        g::bic(Reg::R4, Reg::R4, O::Reg(Reg::R5)),  // complex pair (aux not)
        g::rsb(Reg::R4, Reg::R5, O::Imm(0)),        // swapped-source pair
        g::ldrb(
            Reg::R4,
            pdbt_isa_arm::MemAddr::BaseReg {
                base: Reg::R5,
                index: Reg::R6,
            },
        ),
        g::cmp(Reg::R4, O::Imm(10)),
        g::mla(Reg::R4, Reg::R5, Reg::R6, Reg::R7), // unlearnable → none
    ] {
        let key = parameterize(&inst).map(|p| p.key);
        match (key, full.lookup(&inst)) {
            (Some(_), Some(m)) => {
                let tmpl: Vec<String> = m.entry.template.iter().map(|t| t.to_string()).collect();
                println!(
                    "  {:<24} -> {:?}: {}",
                    inst.to_string(),
                    m.entry.provenance,
                    tmpl.join("; ")
                );
            }
            _ => println!("  {:<24} -> no rule (emulated)", inst.to_string()),
        }
    }
}
