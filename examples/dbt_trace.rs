//! Peek inside the translator: print one guest basic block next to the
//! host code each configuration generates for it, with per-instruction
//! cost classes (the raw material of Table II).
//!
//! ```sh
//! cargo run --release --example dbt_trace
//! ```

use pdbt::arm::{parse_listing, Program};
use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::runtime::{translate_block, CodeClass, TranslateConfig};
use pdbt::workloads::{train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;

fn class_tag(c: CodeClass) -> &'static str {
    match c {
        CodeClass::RuleCore => "rule",
        CodeClass::QemuCore => "qemu",
        CodeClass::DataTransfer => "data",
        CodeClass::Control => "ctrl",
    }
}

fn main() {
    let listing = "
        eor r6, r4, #21
        add r5, r5, r6
        and r6, r6, #255
        subs r4, r4, #1
        bne .-16
    ";
    let program = Program::new(0x2000, parse_listing(listing).expect("assembles"));
    println!("guest block:\n{}", program.disassemble());

    let suite = pdbt::workloads::suite(Scale::tiny());
    let learned = train_excluding(&suite, Benchmark::Mcf, LearnConfig::default());
    let (rules, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());

    for (label, rules) in [("qemu path", None), ("parameterized rules", Some(&rules))] {
        let block = translate_block(&program, 0x2000, rules, &TranslateConfig::default())
            .expect("translates");
        println!(
            "--- {label}: {} host instructions, {}/{} guest instructions rule-covered ---",
            block.code.len(),
            block.rule_covered,
            block.guest_len
        );
        for (inst, class) in block.code.iter().zip(&block.classes) {
            println!("  [{}] {}", class_tag(*class), inst);
        }
        println!();
    }
}
