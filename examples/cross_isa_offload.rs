//! The paper's motivating scenario (§I): offloading a guest (ARM)
//! binary onto a host (x86) server via DBT. Runs one synthetic SPEC-like
//! benchmark under every system configuration and prints the evaluation
//! row it contributes to Figs 11/12.
//!
//! ```sh
//! cargo run --release --example cross_isa_offload [benchmark]
//! ```

use pdbt::core::derive::{derive, DeriveConfig};
use pdbt::core::learning::LearnConfig;
use pdbt::workloads::{run_dbt, run_reference, train_excluding, Benchmark, Scale};
use pdbt_symexec::CheckOptions;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "libquantum".into());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));

    println!("building the synthetic suite and training leave-one-out (excluding {bench})…");
    let suite = pdbt::workloads::suite(Scale::full());
    let target = suite.iter().find(|w| w.bench == bench).unwrap();
    let golden = run_reference(target).expect("reference run");

    let learned = train_excluding(&suite, bench, LearnConfig::default());
    let check = CheckOptions::default();
    let (opcode, _) = derive(&learned, DeriveConfig::opcode_only(), check);
    let (addr, _) = derive(&learned, DeriveConfig::opcode_addrmode(), check);
    let (full, stats) = derive(&learned, DeriveConfig::full(), check);
    println!(
        "rules: {} learned -> {} applicable after full parameterization\n",
        stats.learned, stats.instantiated
    );

    println!(
        "{:<14}{:>10}{:>12}{:>10}",
        "config", "coverage", "host/guest", "speedup"
    );
    let qemu = run_dbt(target, None, true).expect("runs");
    assert_eq!(qemu.output, golden);
    let qemu_total = qemu.metrics.host_executed() as f64;
    let show = |label: &str, report: &pdbt::runtime::Report| {
        println!(
            "{:<14}{:>9.1}%{:>12.2}{:>9.2}x",
            label,
            report.metrics.coverage() * 100.0,
            report.metrics.total_ratio(),
            qemu_total / report.metrics.host_executed() as f64,
        );
    };
    show("qemu4.1", &qemu);
    let r = run_dbt(target, Some(learned), false).expect("runs");
    assert_eq!(r.output, golden);
    show("w/o para.", &r);
    let r = run_dbt(target, Some(opcode), false).expect("runs");
    assert_eq!(r.output, golden);
    show("+opcode", &r);
    let r = run_dbt(target, Some(addr), false).expect("runs");
    assert_eq!(r.output, golden);
    show("+addr-mode", &r);
    let r = run_dbt(target, Some(full), true).expect("runs");
    assert_eq!(r.output, golden);
    show("+condition", &r);
    println!(
        "\nall configurations produced the reference output ({} values)",
        golden.len()
    );
}
